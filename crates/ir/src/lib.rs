#![warn(missing_docs)]

//! # softft-ir
//!
//! A from-scratch SSA intermediate representation that plays the role LLVM IR
//! plays in *Harnessing Soft Computations for Low-budget Fault Tolerance*
//! (Khudia & Mahlke, MICRO 2014).
//!
//! The crate provides:
//!
//! * typed SSA values, instructions, basic blocks, functions and modules
//!   ([`Function`], [`Module`]),
//! * a structured [`dsl`] frontend that performs on-the-fly SSA construction
//!   (Braun et al.), so that loop-carried variables materialize as phi nodes
//!   in loop headers — exactly the property the paper's *state variable*
//!   analysis relies on,
//! * classic analyses: dominator trees ([`dom`]), natural loops ([`loops`]),
//!   def-use chains ([`uses`]),
//! * a structural [`verify`] pass, and a human-readable [`printer`].
//!
//! # Example
//!
//! ```
//! use softft_ir::dsl::FunctionDsl;
//! use softft_ir::{Type, IntCC};
//!
//! // sum = Σ i for i in 0..10 — `sum` becomes a phi in the loop header.
//! let func = FunctionDsl::build("sum", &[], Some(Type::I64), |d| {
//!     let sum = d.declare_var(Type::I64);
//!     let zero = d.iconst(Type::I64, 0);
//!     let ten = d.iconst(Type::I64, 10);
//!     d.set(sum, zero);
//!     d.for_range(zero, ten, |d, i| {
//!         let s = d.get(sum);
//!         let s2 = d.add(s, i);
//!         d.set(sum, s2);
//!     });
//!     let s = d.get(sum);
//!     d.ret(Some(s));
//! });
//! softft_ir::verify::verify_function(&func).unwrap();
//! ```

pub mod builder;
pub mod dom;
pub mod dsl;
pub mod entities;
pub mod function;
pub mod inst;
pub mod loops;
pub mod module;
pub mod opt;
pub mod printer;
pub mod types;
pub mod uses;
pub mod verify;

pub use entities::{BlockId, FuncId, GlobalId, InstId, ValueId};
pub use function::{BlockData, Function, InstData, ValueData, ValueKind};
pub use inst::{BinOp, CastKind, CheckKind, FloatCC, IntCC, Op, Term, UnOp};
pub use module::{Global, Module};
pub use types::{Const, Type};
