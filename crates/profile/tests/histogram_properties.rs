//! Property tests for Algorithm 1 (on-line histogram) and Algorithm 2
//! (greedy compact range): the invariants the check classifier relies on
//! must hold for arbitrary value streams.

use proptest::prelude::*;
use softft_profile::{CheckSpec, ClassifyConfig, OnlineHistogram, TopK};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn histogram_count_is_conserved(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut h = OnlineHistogram::new(5);
        for &v in &values {
            h.insert(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert!(h.bins().len() <= 5);
    }

    #[test]
    fn histogram_bins_sorted_and_disjoint(values in proptest::collection::vec(-1e9f64..1e9, 2..200)) {
        let mut h = OnlineHistogram::new(4);
        for &v in &values {
            h.insert(v);
        }
        let bins = h.bins();
        for b in bins {
            prop_assert!(b.lo <= b.hi);
            prop_assert!(b.count > 0);
        }
        for w in bins.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "overlap: {:?}", w);
        }
    }

    #[test]
    fn histogram_hull_covers_all_values(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut h = OnlineHistogram::new(5);
        for &v in &values {
            h.insert(v);
        }
        let lo = h.min().expect("non-empty");
        let hi = h.max().expect("non-empty");
        for &v in &values {
            prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn compact_range_within_hull_and_contains_max_bin(
        values in proptest::collection::vec(-1e5f64..1e5, 2..200),
        frac in 0.1f64..1.0,
    ) {
        let mut h = OnlineHistogram::new(5);
        for &v in &values {
            h.insert(v);
        }
        let hull = h.max().expect("non-empty") - h.min().expect("non-empty");
        let r = h.compact_range(hull * frac).expect("non-empty");
        prop_assert!(r.lo >= h.min().expect("non-empty"));
        prop_assert!(r.hi <= h.max().expect("non-empty"));
        prop_assert!(r.count <= h.total());
        // Some maximal-count bin is inside the returned range (counts can
        // tie, in which case the algorithm may start from any of them).
        let max_count = h.bins().iter().map(|b| b.count).max().expect("non-empty");
        let contained = h
            .bins()
            .iter()
            .any(|b| b.count == max_count && r.lo <= b.lo && b.hi <= r.hi);
        prop_assert!(contained, "no maximal bin inside {r:?}");
        prop_assert!(r.count >= max_count);
    }

    #[test]
    fn merge_equals_pooled_total(
        a in proptest::collection::vec(-1e4f64..1e4, 1..100),
        b in proptest::collection::vec(-1e4f64..1e4, 1..100),
    ) {
        let mut ha = OnlineHistogram::new(5);
        for &v in &a {
            ha.insert(v);
        }
        let mut hb = OnlineHistogram::new(5);
        for &v in &b {
            hb.insert(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.total(), (a.len() + b.len()) as u64);
        prop_assert!(ha.bins().len() <= 5);
    }

    #[test]
    fn topk_exact_below_capacity(values in proptest::collection::vec(0u64..3, 1..200)) {
        // At most 3 distinct values with k = 4: counts must be exact.
        let mut t = TopK::new(4);
        for &v in &values {
            t.observe(v);
        }
        prop_assert!(!t.is_approximate());
        for (bits, count) in t.sorted() {
            let real = values.iter().filter(|&&v| v == bits).count() as u64;
            prop_assert_eq!(count, real);
        }
    }

    #[test]
    fn classified_checks_accept_all_profiled_values(values in proptest::collection::vec(-5000i64..5000, 20..300)) {
        use softft_profile::profiler::ValueStats;
        // Feed the stats the way the profiler would.
        let mut stats = ValueStats {
            count: 0,
            hist: OnlineHistogram::new(5),
            topk: TopK::new(4),
            is_float: false,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        // Mirror the profiler's observe loop via public merge-free path:
        // re-implemented here because `observe` is crate-private.
        for &v in &values {
            stats.count += 1;
            stats.hist.insert(v as f64);
            stats.topk.observe(v as u64);
            stats.min = stats.min.min(v as f64);
            stats.max = stats.max.max(v as f64);
        }
        if let Some(spec) = softft_profile::checks::classify(&stats, &ClassifyConfig::default()) {
            for &v in &values {
                prop_assert!(
                    spec.passes(v as u64, false),
                    "profiled value {v} fails its own check {spec:?}"
                );
            }
            // And something outside the padded hull must fail for ranges.
            if let CheckSpec::IntRange { lo, hi } = spec {
                prop_assert!(!spec.passes((hi + 1) as u64, false));
                prop_assert!(!spec.passes((lo - 1) as u64, false));
            }
        }
    }
}
