#![warn(missing_docs)]

//! # softft-profile
//!
//! Value profiling for expected-value checks, reproducing Section III-C of
//! *Harnessing Soft Computations for Low-budget Fault Tolerance* (MICRO
//! 2014):
//!
//! * [`histogram`] — the on-line histogram of Algorithm 1 (B bins, default
//!   5) and the greedy compact-range extraction of Algorithm 2;
//! * [`topk`] — exact tracking of the few most frequent values per
//!   instruction (for the single-value and two-value checks of Fig. 6);
//! * [`profiler`] — a VM observer that collects per-instruction value
//!   statistics during a training run;
//! * [`checks`] — classification of each instruction's profile into one of
//!   the three check flavours (single / pair / range) or "not amenable";
//! * [`db`] — a serializable profile database handed to the
//!   transformation passes (profiling is an offline, once-per-benchmark
//!   step in the paper; the on-disk format mirrors that).

pub mod checks;
pub mod db;
pub mod histogram;
pub mod profiler;
pub mod topk;

pub use checks::{CheckSpec, ClassifyConfig};
pub use db::{InstKey, ProfileDb};
pub use histogram::OnlineHistogram;
pub use profiler::{Profiler, ValueStats};
pub use topk::TopK;
