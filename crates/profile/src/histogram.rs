//! On-line histogram (Algorithm 1) and greedy compact-range extraction
//! (Algorithm 2).

use serde::{Deserialize, Serialize};

/// One histogram bin: inclusive bounds plus a count.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
    /// Number of observed values in `[lo, hi]`.
    pub count: u64,
}

impl Bin {
    /// Width of the bin.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A bounded-size histogram maintained on line (Algorithm 1).
///
/// Insertion either increments a containing bin or adds a point bin and
/// merges the two bins with the smallest gap, keeping at most `capacity`
/// bins (the paper uses B = 5). Bins are kept sorted and disjoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineHistogram {
    bins: Vec<Bin>,
    capacity: usize,
}

impl OnlineHistogram {
    /// Default bin count used by the paper's experiments.
    pub const DEFAULT_BINS: usize = 5;

    /// Creates an empty histogram with `capacity` bins.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "histogram needs at least two bins");
        OnlineHistogram {
            bins: Vec::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// The current bins, sorted by bound, pairwise disjoint.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Total count across bins.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|b| b.count).sum()
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.bins.first().map(|b| b.lo)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.bins.last().map(|b| b.hi)
    }

    /// Inserts one value (Algorithm 1). Non-finite values are clamped to
    /// the largest finite magnitude so a NaN-producing training run cannot
    /// poison the bounds.
    pub fn insert(&mut self, v: f64) {
        self.insert_span(v, v, 1);
    }

    /// Inserts an interval with a count (used to merge histograms from
    /// multiple profiling inputs).
    pub fn insert_span(&mut self, lo: f64, hi: f64, count: u64) {
        let lo = clamp_finite(lo);
        let hi = clamp_finite(hi).max(lo);
        // Containment fast path (single value only).
        if lo == hi {
            if let Some(b) = self.bins.iter_mut().find(|b| b.lo <= lo && lo <= b.hi) {
                b.count += count;
                return;
            }
        }
        // Add as a new bin, keep sorted.
        let pos = self.bins.partition_point(|b| (b.lo, b.hi) < (lo, hi));
        self.bins.insert(pos, Bin { lo, hi, count });
        self.normalize();
        while self.bins.len() > self.capacity {
            self.merge_closest();
        }
    }

    /// Merges overlapping neighbours introduced by span insertion.
    fn normalize(&mut self) {
        let mut i = 0;
        while i + 1 < self.bins.len() {
            if self.bins[i].hi >= self.bins[i + 1].lo {
                let b = self.bins.remove(i + 1);
                self.bins[i].hi = self.bins[i].hi.max(b.hi);
                self.bins[i].lo = self.bins[i].lo.min(b.lo);
                self.bins[i].count += b.count;
            } else {
                i += 1;
            }
        }
    }

    /// Finds adjacent bins with the smallest gap and merges them
    /// (Algorithm 1, steps 6–8).
    fn merge_closest(&mut self) {
        debug_assert!(self.bins.len() >= 2);
        let mut best = 0;
        let mut best_gap = f64::INFINITY;
        for i in 0..self.bins.len() - 1 {
            let gap = self.bins[i + 1].lo - self.bins[i].hi;
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let b = self.bins.remove(best + 1);
        self.bins[best].hi = b.hi;
        self.bins[best].count += b.count;
    }

    /// Greedy compact-range extraction (Algorithm 2).
    ///
    /// Starts from the highest-count bin and absorbs the higher-count
    /// neighbour while the resulting width stays within `r_thr` (the
    /// paper's pseudocode loops "while wider than R_thr", which would
    /// grow the range unboundedly; we read it as *extend while the range
    /// stays compact*, which matches the algorithm's stated goal of a
    /// tight range holding most of the mass). Returns the range and the
    /// mass it covers.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn compact_range(&self, r_thr: f64) -> Option<Bin> {
        if self.bins.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, b) in self.bins.iter().enumerate() {
            if b.count > self.bins[best].count {
                best = i;
            }
        }
        let mut left = best; // inclusive
        let mut right = best; // inclusive
        let mut ret = self.bins[best];
        loop {
            let lcand = left.checked_sub(1).map(|i| &self.bins[i]);
            let rcand = if right + 1 < self.bins.len() {
                Some(&self.bins[right + 1])
            } else {
                None
            };
            // Prefer the higher-count side (Algorithm 2 lines 6–13).
            let take_left = match (lcand, rcand) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l.count >= r.count,
            };
            let (new_lo, new_hi, add) = if take_left {
                let l = lcand.expect("checked");
                (l.lo, ret.hi, l.count)
            } else {
                let r = rcand.expect("checked");
                (ret.lo, r.hi, r.count)
            };
            if new_hi - new_lo > r_thr {
                // Try the other side before giving up.
                let (alt, alt_is_left) = if take_left {
                    (rcand, false)
                } else {
                    (lcand, true)
                };
                match alt {
                    Some(a) => {
                        let (alo, ahi) = if alt_is_left {
                            (a.lo, ret.hi)
                        } else {
                            (ret.lo, a.hi)
                        };
                        if ahi - alo > r_thr {
                            break;
                        }
                        ret = Bin {
                            lo: alo,
                            hi: ahi,
                            count: ret.count + a.count,
                        };
                        if alt_is_left {
                            left -= 1;
                        } else {
                            right += 1;
                        }
                    }
                    None => break,
                }
            } else {
                ret = Bin {
                    lo: new_lo,
                    hi: new_hi,
                    count: ret.count + add,
                };
                if take_left {
                    left -= 1;
                } else {
                    right += 1;
                }
            }
        }
        Some(ret)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &OnlineHistogram) {
        for b in other.bins() {
            self.insert_span(b.lo, b.hi, b.count);
        }
    }
}

fn clamp_finite(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(f64::MIN, f64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_respects_capacity() {
        let mut h = OnlineHistogram::new(5);
        for i in 0..100 {
            h.insert((i * 17 % 31) as f64);
        }
        assert!(h.bins().len() <= 5);
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn bins_stay_sorted_and_disjoint() {
        let mut h = OnlineHistogram::new(4);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 0.0, 6.0, 4.0] {
            h.insert(v);
        }
        let bins = h.bins();
        for w in bins.windows(2) {
            assert!(w[0].hi < w[1].lo, "bins overlap: {w:?}");
        }
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(9.0));
    }

    #[test]
    fn repeated_value_increments_single_bin() {
        let mut h = OnlineHistogram::new(5);
        for _ in 0..50 {
            h.insert(42.0);
        }
        assert_eq!(h.bins().len(), 1);
        assert_eq!(
            h.bins()[0],
            Bin {
                lo: 42.0,
                hi: 42.0,
                count: 50
            }
        );
    }

    #[test]
    fn closest_bins_merge_first() {
        let mut h = OnlineHistogram::new(2);
        h.insert(0.0);
        h.insert(100.0);
        h.insert(1.0); // closest to 0.0 — merges with it
        assert_eq!(h.bins().len(), 2);
        assert_eq!(
            h.bins()[0],
            Bin {
                lo: 0.0,
                hi: 1.0,
                count: 2
            }
        );
        assert_eq!(h.bins()[1].lo, 100.0);
    }

    #[test]
    fn compact_range_picks_dense_mass() {
        let mut h = OnlineHistogram::new(5);
        // Dense cluster around 10..=12, outlier at 1000.
        for _ in 0..40 {
            h.insert(10.0);
        }
        for _ in 0..30 {
            h.insert(11.0);
        }
        for _ in 0..20 {
            h.insert(12.0);
        }
        h.insert(1000.0);
        let r = h.compact_range(5.0).unwrap();
        assert!(r.lo >= 10.0 && r.hi <= 12.0 + 5.0);
        assert!(r.hi < 1000.0, "outlier absorbed: {r:?}");
        assert!(r.count >= 90);
    }

    #[test]
    fn compact_range_respects_threshold() {
        let mut h = OnlineHistogram::new(5);
        for v in [0.0, 10.0, 20.0, 30.0, 40.0] {
            for _ in 0..10 {
                h.insert(v);
            }
        }
        let r = h.compact_range(15.0).unwrap();
        assert!(r.width() <= 15.0, "{r:?}");
        let wide = h.compact_range(100.0).unwrap();
        assert_eq!(wide.count, 50); // whole histogram fits
    }

    #[test]
    fn compact_range_empty_is_none() {
        let h = OnlineHistogram::new(5);
        assert!(h.compact_range(1.0).is_none());
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let mut h = OnlineHistogram::new(5);
        h.insert(f64::NAN);
        h.insert(f64::INFINITY);
        h.insert(f64::NEG_INFINITY);
        assert_eq!(h.total(), 3);
        assert!(h.max().unwrap().is_finite());
        assert!(h.min().unwrap().is_finite());
    }

    #[test]
    fn merge_combines_mass() {
        let mut a = OnlineHistogram::new(5);
        let mut b = OnlineHistogram::new(5);
        for i in 0..10 {
            a.insert(i as f64);
            b.insert((i + 100) as f64);
        }
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert!(a.bins().len() <= 5);
        assert_eq!(a.max(), Some(109.0));
    }
}
