//! Classification of value profiles into the three check flavours of
//! Fig. 6.

use crate::profiler::ValueStats;
use serde::{Deserialize, Serialize};

/// An expected-value check derived from profiling (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CheckSpec {
    /// The instruction always produced this exact value (canonical bits).
    Single {
        /// Expected canonical bits.
        bits: u64,
    },
    /// The instruction produced exactly these two values.
    Pair {
        /// First expected value (canonical bits).
        a: u64,
        /// Second expected value (canonical bits).
        b: u64,
    },
    /// Integer results stayed within `[lo, hi]` (after padding).
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Float results stayed within `[lo, hi]` (after padding).
    FloatRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl CheckSpec {
    /// True when a value with the given canonical bits passes the check
    /// (host-side mirror of the inserted IR; used by tests and the
    /// false-positive analysis).
    pub fn passes(&self, bits: u64, is_float: bool) -> bool {
        match *self {
            CheckSpec::Single { bits: e } => bits == e,
            CheckSpec::Pair { a, b } => bits == a || bits == b,
            CheckSpec::IntRange { lo, hi } => {
                let v = bits as i64;
                lo <= v && v <= hi
            }
            CheckSpec::FloatRange { lo, hi } => {
                debug_assert!(is_float);
                let v = f64::from_bits(bits);
                lo <= v && v <= hi
            }
        }
    }

    /// Number of extra IR instructions the check costs (comparisons,
    /// combines, and the check itself) — used by static-overhead stats
    /// and Optimization 2's cost-benefit decision.
    pub fn static_cost(&self) -> usize {
        match self {
            CheckSpec::Single { .. } => 2,     // icmp + check
            CheckSpec::Pair { .. } => 4,       // 2×icmp + or + check
            CheckSpec::IntRange { .. } => 3,   // sub + unsigned cmp + check
            CheckSpec::FloatRange { .. } => 4, // 2×fcmp + and + check
        }
    }
}

/// Tunables for classification.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassifyConfig {
    /// Minimum dynamic executions before a check is considered (avoids
    /// checks on cold code whose profile is not representative).
    pub min_samples: u64,
    /// Fraction of profiled mass the trimmed compact range (Algorithm 2)
    /// must cover to be preferred over the full hull. With the default of
    /// 0.999 an outlier-free profile keeps its full hull and false
    /// positives come solely from train/test input differences, as in the
    /// paper (measured there at ~1 per 235K instructions).
    pub trim_coverage: f64,
    /// The range threshold `R_thr` of Algorithm 2, expressed as a
    /// fraction of the observed value hull (`max - min`).
    pub range_frac: f64,
    /// Fractional padding applied to each side of a range check to
    /// absorb benign input variation.
    pub pad_frac: f64,
    /// Maximum hull width for an *integer* range check to be considered
    /// amenable; a wider spread means the "expected range" constrains
    /// nothing and the check is dropped.
    pub max_int_hull: f64,
    /// Maximum hull width for a *float* range check.
    pub max_float_hull: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            min_samples: 16,
            trim_coverage: 0.999,
            range_frac: 0.5,
            pad_frac: 0.25,
            max_int_hull: (1u64 << 24) as f64,
            // A float range spanning more than ~1e5 constrains almost
            // nothing: mantissa flips stay inside it, so the check would
            // cost two FP compares per execution while catching only
            // high-exponent-bit flips. Such instructions are treated as
            // not amenable.
            max_float_hull: 1e5,
        }
    }
}

/// Classifies one instruction's profile into a check, or `None` if the
/// instruction is not amenable (Fig. 6 decision).
///
/// Order of preference: exact single value, exact two values, compact
/// range. The range is the Algorithm-2 trim when it covers nearly all of
/// the mass (dropping outlier bins) and otherwise the full observed hull;
/// either way it is padded by [`ClassifyConfig::pad_frac`] and only
/// accepted when narrower than the amenability cap.
pub fn classify(stats: &ValueStats, cfg: &ClassifyConfig) -> Option<CheckSpec> {
    if stats.count < cfg.min_samples {
        return None;
    }
    let top = stats.topk.sorted();
    if !stats.topk.is_approximate() {
        // Exact census of distinct values.
        if top.len() == 1 {
            return Some(CheckSpec::Single { bits: top[0].0 });
        }
        if top.len() == 2 {
            return Some(CheckSpec::Pair {
                a: top[0].0,
                b: top[1].0,
            });
        }
    }
    // Range check via Algorithm 2.
    let hull = stats.max - stats.min;
    if !hull.is_finite() {
        return None;
    }
    let r_thr = hull * cfg.range_frac;
    let compact = stats.hist.compact_range(r_thr)?;
    let covered = compact.count as f64 / stats.count as f64;
    let (lo, hi) = if covered >= cfg.trim_coverage {
        (compact.lo, compact.hi)
    } else {
        (stats.min, stats.max)
    };
    let max_hull = if stats.is_float {
        cfg.max_float_hull
    } else {
        cfg.max_int_hull
    };
    if hi - lo > max_hull {
        return None;
    }
    let pad = (hi - lo).abs() * cfg.pad_frac;
    if stats.is_float {
        Some(CheckSpec::FloatRange {
            lo: lo - pad,
            hi: hi + pad,
        })
    } else {
        // Integer bounds: widen to the enclosing integers plus at least ±1
        // so off-by-one input variation does not fire the check.
        let pad = pad.max(1.0).min(i64::MAX as f64 / 4.0);
        let lo = (lo - pad).floor();
        let hi = (hi + pad).ceil();
        let clamp = |v: f64| v.clamp(i64::MIN as f64, i64::MAX as f64) as i64;
        Some(CheckSpec::IntRange {
            lo: clamp(lo),
            hi: clamp(hi),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::OnlineHistogram;
    use crate::topk::TopK;

    fn stats_from_ints(values: &[i64]) -> ValueStats {
        let mut s = ValueStats {
            count: 0,
            hist: OnlineHistogram::new(5),
            topk: TopK::new(4),
            is_float: false,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        for &v in values {
            s.count += 1;
            s.hist.insert(v as f64);
            s.topk.observe(v as u64);
            s.min = s.min.min(v as f64);
            s.max = s.max.max(v as f64);
        }
        s
    }

    #[test]
    fn constant_value_yields_single_check() {
        let s = stats_from_ints(&[9; 50]);
        let c = classify(&s, &ClassifyConfig::default()).unwrap();
        assert_eq!(c, CheckSpec::Single { bits: 9 });
        assert!(c.passes(9, false));
        assert!(!c.passes(10, false));
        assert_eq!(c.static_cost(), 2);
    }

    #[test]
    fn two_values_yield_pair_check() {
        let mut vals = vec![3i64; 30];
        vals.extend_from_slice(&[-7; 20]);
        let s = stats_from_ints(&vals);
        let c = classify(&s, &ClassifyConfig::default()).unwrap();
        match c {
            CheckSpec::Pair { a, b } => {
                assert_eq!(a as i64, 3);
                assert_eq!(b as i64, -7);
            }
            other => panic!("expected pair, got {other:?}"),
        }
        assert!(c.passes(3, false));
        assert!(c.passes((-7i64) as u64, false));
        assert!(!c.passes(0, false));
    }

    #[test]
    fn clustered_values_yield_range_check() {
        let vals: Vec<i64> = (0..200).map(|i| 100 + (i % 17)).collect();
        let s = stats_from_ints(&vals);
        let c = classify(&s, &ClassifyConfig::default()).unwrap();
        match c {
            CheckSpec::IntRange { lo, hi } => {
                assert!(lo <= 100 && hi >= 116, "{lo}..{hi}");
                // Padding is bounded.
                assert!(lo > 50 && hi < 200, "{lo}..{hi}");
            }
            other => panic!("expected range, got {other:?}"),
        }
        assert!(c.passes(108, false));
        assert!(!c.passes(100_000, false));
    }

    #[test]
    fn cold_instructions_are_not_amenable() {
        let s = stats_from_ints(&[1, 2, 3]);
        assert!(classify(&s, &ClassifyConfig::default()).is_none());
    }

    #[test]
    fn scattered_values_are_not_amenable() {
        // Uniformly scattered across a huge hull with capped coverage.
        let vals: Vec<i64> = (0..100).map(|i| i * 1_000_000_007).collect();
        let s = stats_from_ints(&vals);
        assert!(classify(&s, &ClassifyConfig::default()).is_none());
    }

    #[test]
    fn float_range_check() {
        let mut s = ValueStats {
            count: 0,
            hist: OnlineHistogram::new(5),
            topk: TopK::new(4),
            is_float: true,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        for i in 0..100 {
            let v = 1.0 + (i % 10) as f64 * 0.01;
            s.count += 1;
            s.hist.insert(v);
            s.topk.observe(v.to_bits());
            s.min = s.min.min(v);
            s.max = s.max.max(v);
        }
        let c = classify(&s, &ClassifyConfig::default()).unwrap();
        match c {
            CheckSpec::FloatRange { lo, hi } => {
                assert!(lo <= 1.0 && hi >= 1.09);
                assert!(c.passes(1.05f64.to_bits(), true));
                assert!(!c.passes(9.0f64.to_bits(), true));
            }
            other => panic!("expected float range, got {other:?}"),
        }
    }

    #[test]
    fn pair_and_range_costs() {
        assert_eq!(CheckSpec::Pair { a: 0, b: 1 }.static_cost(), 4);
        assert_eq!(CheckSpec::IntRange { lo: 0, hi: 1 }.static_cost(), 3);
        assert_eq!(CheckSpec::FloatRange { lo: 0.0, hi: 1.0 }.static_cost(), 4);
    }
}
