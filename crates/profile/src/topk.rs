//! Exact tracking of the most frequent values per instruction
//! (space-saving sketch).

use serde::{Deserialize, Serialize};

/// A tiny space-saving counter over canonical value bits.
///
/// For streams with at most `k` distinct values the counts are exact —
/// which is the case that matters for single/two-value checks: those are
/// only inserted when the profile shows *total* concentration on one or
/// two values.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopK {
    entries: Vec<(u64, u64)>, // (bits, count)
    k: usize,
    /// True once any eviction happened (counts become upper bounds).
    approximate: bool,
}

impl TopK {
    /// Creates a sketch tracking `k` values.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TopK {
            entries: Vec::with_capacity(k),
            k,
            approximate: false,
        }
    }

    /// Records one observation of `bits`.
    pub fn observe(&mut self, bits: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == bits) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push((bits, 1));
            return;
        }
        // Space-saving eviction: replace the minimum, inheriting its count.
        let min = self.entries.iter_mut().min_by_key(|e| e.1).expect("k > 0");
        *min = (bits, min.1 + 1);
        self.approximate = true;
    }

    /// Entries sorted by descending count (ties broken by bits for
    /// determinism).
    pub fn sorted(&self) -> Vec<(u64, u64)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// True if any eviction happened (counts are then upper bounds and
    /// "all mass on ≤2 values" can no longer be concluded).
    pub fn is_approximate(&self) -> bool {
        self.approximate
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before any observation.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another sketch (used when combining profiles from several
    /// training inputs).
    pub fn merge(&mut self, other: &TopK) {
        for &(bits, count) in &other.entries {
            if let Some(e) = self.entries.iter_mut().find(|e| e.0 == bits) {
                e.1 += count;
            } else if self.entries.len() < self.k {
                self.entries.push((bits, count));
            } else {
                self.approximate = true;
            }
        }
        self.approximate |= other.approximate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_few_distinct_values() {
        let mut t = TopK::new(4);
        for _ in 0..10 {
            t.observe(7);
        }
        for _ in 0..3 {
            t.observe(9);
        }
        let s = t.sorted();
        assert_eq!(s, vec![(7, 10), (9, 3)]);
        assert!(!t.is_approximate());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_marks_approximate() {
        let mut t = TopK::new(2);
        t.observe(1);
        t.observe(2);
        t.observe(3); // evicts
        assert!(t.is_approximate());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut t = TopK::new(4);
        for i in 0..100u64 {
            t.observe(42);
            t.observe(1000 + i); // unique noise
        }
        let s = t.sorted();
        assert_eq!(s[0].0, 42);
        assert!(s[0].1 >= 100);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TopK::new(4);
        let mut b = TopK::new(4);
        a.observe(5);
        a.observe(5);
        b.observe(5);
        b.observe(6);
        a.merge(&b);
        let s = a.sorted();
        assert_eq!(s[0], (5, 3));
        assert_eq!(s[1], (6, 1));
        assert!(!a.is_approximate());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
