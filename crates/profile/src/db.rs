//! The serializable profile database.
//!
//! Value profiling is an offline, once-per-benchmark step in the paper;
//! the database is what the profiling pass hands to the transformation
//! pass (and what would live on disk between the two compiler invocations).

use crate::checks::{classify, CheckSpec, ClassifyConfig};
use crate::profiler::{Profiler, ValueStats};
use serde::{Deserialize, Serialize};
use softft_ir::{FuncId, InstId};
use std::collections::HashMap;

/// Identifies a static instruction within a module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstKey {
    /// The function.
    pub func: FuncId,
    /// The instruction within the function.
    pub inst: InstId,
}

/// Per-instruction check specifications derived from a profiling run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProfileDb {
    checks: HashMap<InstKey, CheckSpec>,
    /// Total dynamic executions observed per instruction (kept for
    /// reporting and for Optimization 1's tie-breaking).
    counts: HashMap<InstKey, u64>,
}

impl ProfileDb {
    /// Builds the database by classifying every profiled instruction.
    pub fn from_profiler(prof: &Profiler, cfg: &ClassifyConfig) -> Self {
        Self::from_stats(prof.stats(), cfg)
    }

    /// Builds the database from raw statistics.
    pub fn from_stats(stats: &HashMap<InstKey, ValueStats>, cfg: &ClassifyConfig) -> Self {
        let mut checks = HashMap::new();
        let mut counts = HashMap::new();
        for (k, s) in stats {
            counts.insert(*k, s.count);
            if let Some(spec) = classify(s, cfg) {
                checks.insert(*k, spec);
            }
        }
        ProfileDb { checks, counts }
    }

    /// The check for an instruction, if it is amenable.
    pub fn check_for(&self, key: InstKey) -> Option<CheckSpec> {
        self.checks.get(&key).copied()
    }

    /// Observed dynamic execution count of an instruction (0 if never
    /// executed during profiling).
    pub fn count_of(&self, key: InstKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of amenable instructions.
    pub fn num_amenable(&self) -> usize {
        self.checks.len()
    }

    /// Iterates over all (instruction, check) pairs in deterministic
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (InstKey, CheckSpec)> + '_ {
        let mut keys: Vec<_> = self.checks.keys().copied().collect();
        keys.sort();
        keys.into_iter().map(move |k| (k, self.checks[&k]))
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (out-of-memory, effectively).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        // HashMaps with struct keys serialize as seq-of-pairs.
        let pairs: Vec<(&InstKey, &CheckSpec)> = self.checks.iter().collect();
        let counts: Vec<(&InstKey, &u64)> = self.counts.iter().collect();
        serde_json::to_string(&(pairs, counts))
    }

    /// Deserializes from [`ProfileDb::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        type CheckPairs = Vec<(InstKey, CheckSpec)>;
        type CountPairs = Vec<(InstKey, u64)>;
        let (pairs, counts): (CheckPairs, CountPairs) = serde_json::from_str(s)?;
        Ok(ProfileDb {
            checks: pairs.into_iter().collect(),
            counts: counts.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::{Module, Type};
    use softft_vm::interp::{Vm, VmConfig};

    fn profiled_db() -> ProfileDb {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(64));
            d.for_range(s, e, |d, i| {
                let mask = d.i64c(7);
                let v = d.and_(i, mask); // 0..=7 range
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut prof, None);
        ProfileDb::from_profiler(&prof, &ClassifyConfig::default())
    }

    #[test]
    fn db_contains_amenable_instructions() {
        let db = profiled_db();
        assert!(db.num_amenable() > 0);
        let (key, _) = db.iter().next().unwrap();
        assert!(db.check_for(key).is_some());
        assert!(db.count_of(key) > 0);
    }

    #[test]
    fn json_roundtrip_preserves_checks() {
        let db = profiled_db();
        let json = db.to_json().unwrap();
        let back = ProfileDb::from_json(&json).unwrap();
        assert_eq!(back.num_amenable(), db.num_amenable());
        for (k, spec) in db.iter() {
            assert_eq!(back.check_for(k), Some(spec));
            assert_eq!(back.count_of(k), db.count_of(k));
        }
    }

    #[test]
    fn malformed_json_errors() {
        assert!(ProfileDb::from_json("not json").is_err());
    }

    #[test]
    fn iteration_is_deterministic() {
        let db = profiled_db();
        let a: Vec<_> = db.iter().collect();
        let b: Vec<_> = db.iter().collect();
        assert_eq!(a, b);
    }
}
