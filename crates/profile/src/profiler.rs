//! A VM observer that collects per-instruction value statistics.

use crate::db::InstKey;
use crate::histogram::OnlineHistogram;
use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use softft_ir::function::Function;
use softft_ir::inst::Op;
use softft_ir::{FuncId, InstId, Type};
use softft_vm::interp::Observer;
use std::collections::HashMap;

/// Statistics accumulated for one static instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ValueStats {
    /// Number of dynamic executions observed.
    pub count: u64,
    /// On-line histogram of produced values (Algorithm 1).
    pub hist: OnlineHistogram,
    /// Exact counts of the most frequent values.
    pub topk: TopK,
    /// Whether the result type is floating point.
    pub is_float: bool,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl ValueStats {
    fn new(is_float: bool, bins: usize, k: usize) -> Self {
        ValueStats {
            count: 0,
            hist: OnlineHistogram::new(bins),
            topk: TopK::new(k),
            is_float,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, bits: u64) {
        let v = if self.is_float {
            let f = f64::from_bits(bits);
            if f.is_finite() {
                f
            } else {
                // Clamp non-finite training values; the histogram clamps
                // too, keeping bounds finite.
                if f.is_nan() {
                    0.0
                } else if f > 0.0 {
                    f64::MAX
                } else {
                    f64::MIN
                }
            }
        } else {
            bits as i64 as f64
        };
        self.count += 1;
        self.hist.insert(v);
        self.topk.observe(bits);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges statistics from another profiling run of the same binary.
    pub fn merge(&mut self, other: &ValueStats) {
        self.count += other.count;
        self.hist.merge(&other.hist);
        self.topk.merge(&other.topk);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// True if `op` producing a value of `ty` is a candidate for an
/// expected-value check.
///
/// Candidates are pure value-producing instructions *including loads*
/// (the paper's Fig. 5 checks a table-lookup result) but excluding phis,
/// calls, and one-bit results (a range check on `i1` is vacuous).
pub fn is_check_candidate(op: &Op, ty: Type) -> bool {
    if ty == Type::I1 {
        return false;
    }
    matches!(
        op,
        Op::Bin { .. } | Op::Un { .. } | Op::Cast { .. } | Op::Select { .. } | Op::Load { .. }
    )
}

/// Collects [`ValueStats`] for every check-candidate instruction during a
/// training-run interpretation (the paper's separate value-profiling pass).
#[derive(Debug)]
pub struct Profiler {
    stats: HashMap<InstKey, ValueStats>,
    bins: usize,
    k: usize,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(OnlineHistogram::DEFAULT_BINS, 4)
    }
}

impl Profiler {
    /// Creates a profiler with `bins` histogram bins and `k` exact
    /// frequent-value slots per instruction.
    pub fn new(bins: usize, k: usize) -> Self {
        Profiler {
            stats: HashMap::new(),
            bins,
            k,
        }
    }

    /// The collected statistics.
    pub fn stats(&self) -> &HashMap<InstKey, ValueStats> {
        &self.stats
    }

    /// Consumes the profiler, returning the statistics map.
    pub fn into_stats(self) -> HashMap<InstKey, ValueStats> {
        self.stats
    }

    /// Merges another profiler's statistics (multi-input profiling).
    pub fn merge(&mut self, other: &Profiler) {
        for (k, s) in &other.stats {
            match self.stats.get_mut(k) {
                Some(mine) => mine.merge(s),
                None => {
                    self.stats.insert(*k, s.clone());
                }
            }
        }
    }
}

impl Observer for Profiler {
    fn on_result(&mut self, func: FuncId, f: &Function, inst: InstId, ty: Type, bits: u64) {
        if !is_check_candidate(&f.inst(inst).op, ty) {
            return;
        }
        let key = InstKey { func, inst };
        let entry = self
            .stats
            .entry(key)
            .or_insert_with(|| ValueStats::new(ty.is_float(), self.bins, self.k));
        entry.observe(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::Module;
    use softft_vm::interp::{Vm, VmConfig};

    #[test]
    fn candidate_filter() {
        use softft_ir::inst::{BinOp, IntCC};
        use softft_ir::ValueId;
        let a = ValueId::new(0);
        assert!(is_check_candidate(
            &Op::Bin {
                op: BinOp::Add,
                lhs: a,
                rhs: a
            },
            Type::I32
        ));
        assert!(is_check_candidate(&Op::Load { addr: a }, Type::I16));
        assert!(!is_check_candidate(
            &Op::Icmp {
                pred: IntCC::Eq,
                lhs: a,
                rhs: a
            },
            Type::I1
        ));
        assert!(!is_check_candidate(
            &Op::Phi { incomings: vec![] },
            Type::I32
        ));
    }

    #[test]
    fn profiler_collects_loop_values() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(100));
            d.for_range(s, e, |d, i| {
                let seven = d.i64c(7);
                let v = d.srem(i, seven); // values 0..=6
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        let r = Vm::new(&m, VmConfig::default()).run(main, &[], &mut prof, None);
        assert!(r.completed());
        // The srem instruction produced 100 values in [0, 6].
        let srem_stats = prof
            .stats()
            .values()
            .find(|s| s.count == 100 && s.max <= 6.0 && s.min >= 0.0);
        assert!(srem_stats.is_some(), "{:?}", prof.stats());
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(21);
            let b = d.add(a, a);
            d.ret(Some(b));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut p1 = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut p1, None);
        let mut p2 = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut p2, None);
        p1.merge(&p2);
        let s = p1.stats().values().next().unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.topk.sorted()[0], (42, 2));
    }

    #[test]
    fn float_stats_track_bounds() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::F64), |d| {
            let acc = d.declare_var(Type::F64);
            let z = d.fconst(0.0);
            d.set(acc, z);
            let (s, e) = (d.i64c(1), d.i64c(11));
            d.for_range(s, e, |d, i| {
                let fi = d.sitofp(i);
                let half = d.fconst(0.5);
                let v = d.fmul(fi, half); // 0.5 .. 5.0
                let a = d.get(acc);
                let a2 = d.fadd(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut prof = Profiler::default();
        Vm::new(&m, VmConfig::default()).run(main, &[], &mut prof, None);
        // Among the float-producing instructions (sitofp, fmul, fadd),
        // the fmul's stats span exactly [0.5, 5.0].
        let fmul = prof
            .stats()
            .values()
            .find(|s| s.is_float && s.min == 0.5 && s.max == 5.0)
            .expect("fmul profiled");
        assert_eq!(fmul.count, 10);
    }
}
