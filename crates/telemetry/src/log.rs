//! Minimal leveled stderr logging for the `repro` binary.
//!
//! Deliberately tiny: three levels, no timestamps, no global state. The
//! binary owns a [`Logger`] and threads it (or just its [`Verbosity`])
//! to the code that prints. At the default [`Verbosity::Normal`] level
//! the output is byte-identical to the previous raw `eprintln!` calls.

/// How much stderr chatter to emit.
///
/// Ordered: `Quiet < Normal < Verbose`, so `verbosity >= Verbosity::Normal`
/// reads naturally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Errors only (`-q`).
    Quiet,
    /// Errors plus run summaries (the default).
    #[default]
    Normal,
    /// Everything, including per-step progress (`-v`).
    Verbose,
}

/// A leveled stderr logger.
#[derive(Clone, Copy, Debug, Default)]
pub struct Logger {
    /// The threshold below which messages are dropped.
    pub verbosity: Verbosity,
}

impl Logger {
    /// A logger at the given level.
    pub fn new(verbosity: Verbosity) -> Self {
        Logger { verbosity }
    }

    /// Emits at every level (usage errors, IO failures).
    pub fn error(&self, msg: impl AsRef<str>) {
        eprintln!("{}", msg.as_ref());
    }

    /// Emits at [`Verbosity::Normal`] and above (run summaries).
    pub fn info(&self, msg: impl AsRef<str>) {
        if self.verbosity >= Verbosity::Normal {
            eprintln!("{}", msg.as_ref());
        }
    }

    /// Emits at [`Verbosity::Verbose`] only (per-step progress).
    pub fn debug(&self, msg: impl AsRef<str>) {
        if self.verbosity >= Verbosity::Verbose {
            eprintln!("{}", msg.as_ref());
        }
    }

    /// True when [`Logger::debug`] output would be emitted; lets callers
    /// skip building expensive progress strings.
    pub fn is_verbose(&self) -> bool {
        self.verbosity >= Verbosity::Verbose
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
        assert_eq!(Verbosity::default(), Verbosity::Normal);
    }

    #[test]
    fn verbose_gate() {
        assert!(!Logger::new(Verbosity::Quiet).is_verbose());
        assert!(!Logger::new(Verbosity::Normal).is_verbose());
        assert!(Logger::new(Verbosity::Verbose).is_verbose());
    }
}
