//! Append-only, crash-safe campaign run store.
//!
//! A campaign that streams trial completions to disk instead of
//! buffering them in memory can be interrupted at any point and lose
//! at most the trial that was mid-write. This module is the storage
//! substrate: one directory per run holding a `manifest.json` (seed,
//! config, per-shard progress) plus one append-only *shard* file per
//! campaign (benchmark × technique), each a sequence of
//! length-prefixed JSONL frames.
//!
//! Framing is `"{:08x} {json}\n"` — eight lowercase hex digits of the
//! JSON byte length, a space, the JSON object, a newline. The length
//! prefix makes torn tails detectable without trusting newline
//! placement: a reader stops at the first frame whose header is
//! malformed, whose body is shorter than declared, or whose body fails
//! to parse, and a writer reopening the shard truncates that invalid
//! tail before appending. Frames carry a monotonic per-shard `seq`
//! assigned under the writer lock, so replays can detect duplicates
//! from a resumed run racing a crash.
//!
//! The manifest is rewritten atomically (temp file + rename) so a
//! crash mid-update leaves the previous manifest intact; shard files
//! are the source of truth for *which* trials completed, the manifest
//! only caches progress for cheap status queries.
//!
//! Serialization is the crate's hand-rolled [`crate::json`] (like the
//! metrics registry): the store must read its own bytes back
//! losslessly — full-range `u64` seeds included — without leaning on
//! an external serializer. This crate knows nothing about campaign
//! types (the dependency points the other way), so the per-trial
//! payload is an opaque [`JsonValue`]; `softft-campaign::live` gives
//! it a typed schema.

use crate::json::JsonValue;
use crate::wire::{self, FrameStep};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Bumped when the store layout or frame schema changes shape.
pub const RUNSTORE_SCHEMA_VERSION: u32 = 1;

/// One completed trial as persisted in a shard file.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredTrial {
    /// Monotonic per-shard sequence number (assigned by the writer).
    pub seq: u64,
    /// Fault-plan index within the campaign (0-based).
    pub trial: u32,
    /// Milliseconds since the appending run started (observational).
    pub t_ms: u64,
    /// True when the trial ended in a watchdog trap (spin to the
    /// dynamic-instruction bound).
    pub watchdog: bool,
    /// Live execution nanoseconds for this trial (observational).
    pub exec_ns: u64,
    /// Nonzero per-opcode dynamic counts, canonical opcode order.
    pub ops: Vec<(String, u64)>,
    /// Per-check-kind firing counts, canonical kind order (zeros
    /// omitted).
    pub checks: Vec<(String, u64)>,
    /// The campaign-typed trial record (opaque at this layer;
    /// `softft-campaign::live` defines the schema).
    pub record: JsonValue,
}

fn pairs_to_json(pairs: &[(String, u64)]) -> JsonValue {
    JsonValue::Array(
        pairs
            .iter()
            .map(|(k, n)| JsonValue::Array(vec![JsonValue::str(k.clone()), JsonValue::num(*n)]))
            .collect(),
    )
}

fn pairs_from_json(v: &JsonValue) -> Option<Vec<(String, u64)>> {
    v.as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            match pair {
                [k, n] => Some((k.as_str()?.to_string(), n.as_u64()?)),
                _ => None,
            }
        })
        .collect()
}

impl StoredTrial {
    /// Compact single-line JSON for one frame body.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("seq".to_string(), JsonValue::num(self.seq)),
            ("trial".to_string(), JsonValue::num(self.trial)),
            ("t_ms".to_string(), JsonValue::num(self.t_ms)),
            ("watchdog".to_string(), JsonValue::Bool(self.watchdog)),
            ("exec_ns".to_string(), JsonValue::num(self.exec_ns)),
            ("ops".to_string(), pairs_to_json(&self.ops)),
            ("checks".to_string(), pairs_to_json(&self.checks)),
            ("record".to_string(), self.record.clone()),
        ])
        .to_json()
    }

    /// Parses one frame body.
    pub fn from_json(text: &str) -> Option<StoredTrial> {
        let v = JsonValue::parse(text).ok()?;
        Some(StoredTrial {
            seq: v.get("seq")?.as_u64()?,
            trial: v.get("trial")?.as_u64()? as u32,
            t_ms: v.get("t_ms")?.as_u64()?,
            watchdog: v.get("watchdog")?.as_bool()?,
            exec_ns: v.get("exec_ns")?.as_u64()?,
            ops: pairs_from_json(v.get("ops")?)?,
            checks: pairs_from_json(v.get("checks")?)?,
            record: v.get("record")?.clone(),
        })
    }
}

/// Per-shard (benchmark × technique) progress entry in the manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardMeta {
    /// Display label, e.g. `"segm/dup-val"`.
    pub label: String,
    /// Benchmark name (`"segm"`).
    pub benchmark: String,
    /// Technique slug (`"dup-val"`).
    pub technique: String,
    /// Shard file name within the store directory.
    pub file: String,
    /// Hash of the derived fault plan (config + golden instruction
    /// count); a resume refuses to append if it does not match.
    pub plan_hash: u64,
    /// Golden-run dynamic instruction count the plan derives from.
    pub golden_dyn_insts: u64,
    /// Trials completed (cached; the shard file is authoritative).
    pub completed: u32,
    /// True once every planned trial is present.
    pub complete: bool,
    /// Cumulative wall milliseconds spent appending to this shard
    /// across runs.
    pub wall_ms: u64,
    /// Additional per-worker shard files holding ranges of this
    /// shard's trials (fleet campaigns give each worker its own
    /// append-only file so no two processes share a write cursor).
    /// Empty for single-writer stores; readers fold `file` plus all
    /// of these and dedup by trial index.
    pub worker_files: Vec<String>,
}

impl ShardMeta {
    fn to_value(&self) -> JsonValue {
        let mut value = JsonValue::Object(vec![
            ("label".to_string(), JsonValue::str(self.label.clone())),
            (
                "benchmark".to_string(),
                JsonValue::str(self.benchmark.clone()),
            ),
            (
                "technique".to_string(),
                JsonValue::str(self.technique.clone()),
            ),
            ("file".to_string(), JsonValue::str(self.file.clone())),
            ("plan_hash".to_string(), JsonValue::num(self.plan_hash)),
            (
                "golden_dyn_insts".to_string(),
                JsonValue::num(self.golden_dyn_insts),
            ),
            ("completed".to_string(), JsonValue::num(self.completed)),
            ("complete".to_string(), JsonValue::Bool(self.complete)),
            ("wall_ms".to_string(), JsonValue::num(self.wall_ms)),
        ]);
        // Serialized only when present so single-writer stores keep
        // their pre-fleet manifest bytes (and older readers that
        // ignore unknown keys stay compatible either way).
        if !self.worker_files.is_empty() {
            if let JsonValue::Object(fields) = &mut value {
                fields.push((
                    "worker_files".to_string(),
                    JsonValue::Array(
                        self.worker_files
                            .iter()
                            .map(|f| JsonValue::str(f.clone()))
                            .collect(),
                    ),
                ));
            }
        }
        value
    }

    fn from_value(v: &JsonValue) -> Option<ShardMeta> {
        // Missing in pre-fleet manifests: default to no worker files.
        let worker_files = match v.get("worker_files") {
            Some(list) => list
                .as_array()?
                .iter()
                .map(|f| Some(f.as_str()?.to_string()))
                .collect::<Option<Vec<_>>>()?,
            None => Vec::new(),
        };
        Some(ShardMeta {
            label: v.get("label")?.as_str()?.to_string(),
            benchmark: v.get("benchmark")?.as_str()?.to_string(),
            technique: v.get("technique")?.as_str()?.to_string(),
            file: v.get("file")?.as_str()?.to_string(),
            plan_hash: v.get("plan_hash")?.as_u64()?,
            golden_dyn_insts: v.get("golden_dyn_insts")?.as_u64()?,
            completed: v.get("completed")?.as_u64()? as u32,
            complete: v.get("complete")?.as_bool()?,
            wall_ms: v.get("wall_ms")?.as_u64()?,
            worker_files,
        })
    }
}

/// The run-level manifest: everything needed to re-derive the fault
/// plan and resume exactly, plus cached per-shard progress.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreManifest {
    /// [`RUNSTORE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Planned trials per shard.
    pub trials: u32,
    /// Fault-kind slug (`"register"` / `"branch-target"`).
    pub fault_kind: String,
    /// Checkpoint snapshot interval (0 = disabled).
    pub snapshot_interval: u64,
    /// Worker threads the campaign was launched with (informational;
    /// results are thread-count-invariant).
    pub threads: usize,
    /// Outcome-classification window: HW-detect latency bound.
    pub hw_latency_window: u64,
    /// Outcome-classification threshold for large-change USDC.
    pub large_change_threshold: f64,
    /// One entry per campaign shard, in creation order.
    pub shards: Vec<ShardMeta>,
}

impl StoreManifest {
    /// The shard entry with the given label, if present.
    pub fn shard(&self, label: &str) -> Option<&ShardMeta> {
        self.shards.iter().find(|s| s.label == label)
    }

    /// Serializes the manifest (compact; the file is small and tooling
    /// reads it with a JSON parser, not eyes-first).
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            (
                "schema_version".to_string(),
                JsonValue::num(self.schema_version),
            ),
            ("seed".to_string(), JsonValue::num(self.seed)),
            ("trials".to_string(), JsonValue::num(self.trials)),
            (
                "fault_kind".to_string(),
                JsonValue::str(self.fault_kind.clone()),
            ),
            (
                "snapshot_interval".to_string(),
                JsonValue::num(self.snapshot_interval),
            ),
            ("threads".to_string(), JsonValue::num(self.threads)),
            (
                "hw_latency_window".to_string(),
                JsonValue::num(self.hw_latency_window),
            ),
            (
                "large_change_threshold".to_string(),
                JsonValue::num(self.large_change_threshold),
            ),
            (
                "shards".to_string(),
                JsonValue::Array(self.shards.iter().map(ShardMeta::to_value).collect()),
            ),
        ])
        .to_json()
    }

    /// Parses a manifest.
    pub fn from_json(text: &str) -> Option<StoreManifest> {
        let v = JsonValue::parse(text).ok()?;
        Some(StoreManifest {
            schema_version: v.get("schema_version")?.as_u64()? as u32,
            seed: v.get("seed")?.as_u64()?,
            trials: v.get("trials")?.as_u64()? as u32,
            fault_kind: v.get("fault_kind")?.as_str()?.to_string(),
            snapshot_interval: v.get("snapshot_interval")?.as_u64()?,
            threads: v.get("threads")?.as_u64()? as usize,
            hw_latency_window: v.get("hw_latency_window")?.as_u64()?,
            large_change_threshold: v.get("large_change_threshold")?.as_f64()?,
            shards: v
                .get("shards")?
                .as_array()?
                .iter()
                .map(ShardMeta::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Shard file name for a campaign label (`"segm/dup-val"` →
/// `"segm.dup-val.shard.jsonl"`).
pub fn shard_file_name(label: &str) -> String {
    format!("{}.shard.jsonl", label.replace('/', "."))
}

/// Per-worker shard file name for a campaign label (`"segm/dup-val"`,
/// worker 2 → `"segm.dup-val.w2.shard.jsonl"`). Fleet workers each
/// append to their own file; [`ShardMeta::worker_files`] lists them.
pub fn shard_file_name_worker(label: &str, worker: usize) -> String {
    format!("{}.w{}.shard.jsonl", label.replace('/', "."), worker)
}

/// Decodes the valid frame prefix of `bytes`. Returns the decoded
/// trials and the byte length of the valid prefix; scanning stops at
/// the first malformed, short, or unparseable frame (torn tail).
fn decode_frames(bytes: &[u8]) -> (Vec<StoredTrial>, usize) {
    let mut trials = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        match wire::scan_frame(&bytes[off..]) {
            FrameStep::Frame { body, len } => {
                let Some(trial) = StoredTrial::from_json(body) else {
                    break;
                };
                trials.push(trial);
                off += len;
            }
            // Both stop conditions mark a torn tail on disk.
            FrameStep::Incomplete | FrameStep::Malformed => break,
        }
    }
    (trials, off)
}

fn io_invalid(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// A run-store directory: manifest plus shard files.
pub struct RunStore {
    dir: PathBuf,
    manifest: Mutex<StoreManifest>,
}

impl RunStore {
    /// Creates the directory (if needed) and writes a fresh manifest.
    /// Fails if a manifest already exists — use [`RunStore::open`] to
    /// resume.
    pub fn create(dir: &Path, manifest: StoreManifest) -> std::io::Result<RunStore> {
        std::fs::create_dir_all(dir)?;
        if dir.join("manifest.json").exists() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a run store", dir.display()),
            ));
        }
        let store = RunStore {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// Opens an existing store, reading its manifest.
    pub fn open(dir: &Path) -> std::io::Result<RunStore> {
        let text = std::fs::read_to_string(dir.join("manifest.json"))?;
        let manifest = StoreManifest::from_json(&text)
            .ok_or_else(|| io_invalid(format!("{}: malformed manifest.json", dir.display())))?;
        if manifest.schema_version != RUNSTORE_SCHEMA_VERSION {
            return Err(io_invalid(format!(
                "run store schema v{} (this build reads v{})",
                manifest.schema_version, RUNSTORE_SCHEMA_VERSION
            )));
        }
        Ok(RunStore {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of the current manifest.
    pub fn manifest(&self) -> StoreManifest {
        self.manifest.lock().expect("manifest lock").clone()
    }

    /// Mutates the manifest under the lock and atomically rewrites
    /// `manifest.json` (temp file + rename).
    pub fn update_manifest(
        &self,
        f: impl FnOnce(&mut StoreManifest),
    ) -> std::io::Result<StoreManifest> {
        {
            let mut m = self.manifest.lock().expect("manifest lock");
            f(&mut m);
        }
        self.write_manifest()?;
        Ok(self.manifest())
    }

    fn write_manifest(&self) -> std::io::Result<()> {
        let json = self.manifest.lock().expect("manifest lock").to_json();
        let tmp = self.dir.join("manifest.json.tmp");
        std::fs::write(&tmp, json.as_bytes())?;
        std::fs::rename(&tmp, self.dir.join("manifest.json"))
    }

    /// Absolute path of a shard file within the store.
    pub fn shard_path(&self, file: &str) -> PathBuf {
        self.dir.join(file)
    }

    /// Reads every valid frame of a shard, silently dropping a torn
    /// tail. A missing shard file reads as empty (the campaign
    /// crashed before its first append).
    pub fn read_shard(&self, file: &str) -> std::io::Result<Vec<StoredTrial>> {
        let path = self.shard_path(file);
        if !path.exists() {
            return Ok(Vec::new());
        }
        let bytes = std::fs::read(path)?;
        Ok(decode_frames(&bytes).0)
    }

    /// Reads and concatenates every file belonging to a shard — the
    /// primary `file` plus any fleet `worker_files` — each with its
    /// own torn tail dropped. Trials are returned in file order,
    /// un-deduplicated: ranges reclaimed from dead workers are
    /// re-executed by others, so the same trial index may appear in
    /// several files (with bitwise-identical records; trial *i* is a
    /// pure function of the plan). Callers dedup by trial index.
    pub fn read_shard_files(&self, meta: &ShardMeta) -> std::io::Result<Vec<StoredTrial>> {
        let mut trials = self.read_shard(&meta.file)?;
        for f in &meta.worker_files {
            trials.extend(self.read_shard(f)?);
        }
        Ok(trials)
    }

    /// Opens a shard for appending, recovering from a torn tail by
    /// truncating it. The writer's `seq` continues from the highest
    /// persisted value.
    pub fn shard_writer(&self, file: &str) -> std::io::Result<ShardWriter> {
        let path = self.shard_path(file);
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let (trials, valid) = decode_frames(&bytes);
        if valid < bytes.len() {
            f.set_len(valid as u64)?;
        }
        f.seek(SeekFrom::Start(valid as u64))?;
        let next_seq = trials.iter().map(|t| t.seq + 1).max().unwrap_or(0);
        Ok(ShardWriter {
            inner: Mutex::new(WriterInner { file: f, next_seq }),
        })
    }
}

struct WriterInner {
    file: File,
    next_seq: u64,
}

/// Append handle for one shard file. Thread-safe: campaign workers
/// share one writer; each append is a single flushed write under the
/// lock, so frames never interleave.
pub struct ShardWriter {
    inner: Mutex<WriterInner>,
}

impl ShardWriter {
    /// Appends one trial, assigning and returning its `seq`.
    pub fn append(&self, mut trial: StoredTrial) -> std::io::Result<u64> {
        let mut inner = self.inner.lock().expect("shard writer lock");
        trial.seq = inner.next_seq;
        inner
            .file
            .write_all(wire::encode_frame(&trial.to_json()).as_bytes())?;
        inner.file.flush()?;
        inner.next_seq += 1;
        Ok(trial.seq)
    }
}

/// Incremental reader for tailing a live shard: each
/// [`ShardTail::poll`] returns the frames completed since the last
/// poll, never consuming a partial frame.
pub struct ShardTail {
    path: PathBuf,
    offset: u64,
}

impl ShardTail {
    /// A tail positioned at the start of `path` (which may not exist
    /// yet).
    pub fn new(path: PathBuf) -> ShardTail {
        ShardTail { path, offset: 0 }
    }

    /// Reads any newly completed frames. A still-torn tail stays
    /// unconsumed until the writer finishes it.
    pub fn poll(&mut self) -> std::io::Result<Vec<StoredTrial>> {
        if !self.path.exists() {
            return Ok(Vec::new());
        }
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        let (trials, valid) = decode_frames(&bytes);
        self.offset += valid as u64;
        Ok(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_frame;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("softft_runstore_{}_{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> StoreManifest {
        StoreManifest {
            schema_version: RUNSTORE_SCHEMA_VERSION,
            seed: 0x5EED,
            trials: 10,
            fault_kind: "register".to_string(),
            snapshot_interval: 0,
            threads: 1,
            hw_latency_window: 1000,
            large_change_threshold: 4.0,
            shards: Vec::new(),
        }
    }

    fn trial(n: u32) -> StoredTrial {
        StoredTrial {
            seq: 0,
            trial: n,
            t_ms: 5,
            watchdog: n.is_multiple_of(2),
            exec_ns: 1000 + n as u64,
            ops: vec![("alu".to_string(), 12), ("load".to_string(), 3)],
            checks: vec![("dup-mismatch".to_string(), 1)],
            record: JsonValue::Object(vec![
                ("outcome".to_string(), JsonValue::str("masked")),
                ("seed".to_string(), JsonValue::num(u64::MAX - n as u64)),
            ]),
        }
    }

    #[test]
    fn trial_json_round_trips() {
        let t = trial(3);
        let back = StoredTrial::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(
            back.record.get("seed").unwrap().as_u64(),
            Some(u64::MAX - 3)
        );
    }

    #[test]
    fn frames_round_trip() {
        let a = trial(0);
        let framed = encode_frame(&a.to_json());
        let two = format!("{framed}{framed}");
        let (decoded, consumed) = decode_frames(two.as_bytes());
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], a);
        assert_eq!(consumed, two.len());
    }

    #[test]
    fn torn_tail_stops_decode_and_writer_truncates() {
        let dir = temp_store_dir("torn");
        let store = RunStore::create(&dir, manifest()).unwrap();
        let file = shard_file_name("segm/dup-val");
        let w = store.shard_writer(&file).unwrap();
        w.append(trial(0)).unwrap();
        w.append(trial(1)).unwrap();
        drop(w);
        // Simulate a crash mid-append: a frame header with a length
        // that promises more bytes than exist.
        let path = store.shard_path(&file);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"000000ff {\"seq\":9,\"truncat").unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        assert_eq!(store.read_shard(&file).unwrap().len(), 2);
        // Reopening the writer truncates the torn tail and continues
        // the sequence.
        let w = store.shard_writer(&file).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        let seq = w.append(trial(2)).unwrap();
        assert_eq!(seq, 2);
        let trials = store.read_shard(&file).unwrap();
        assert_eq!(
            trials.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_is_monotonic_across_reopen() {
        let dir = temp_store_dir("seq");
        let store = RunStore::create(&dir, manifest()).unwrap();
        let file = shard_file_name("b/t");
        let w = store.shard_writer(&file).unwrap();
        assert_eq!(w.append(trial(0)).unwrap(), 0);
        assert_eq!(w.append(trial(1)).unwrap(), 1);
        drop(w);
        let w = store.shard_writer(&file).unwrap();
        assert_eq!(w.append(trial(2)).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_polls_only_complete_frames() {
        let dir = temp_store_dir("tail");
        let store = RunStore::create(&dir, manifest()).unwrap();
        let file = shard_file_name("b/t");
        let w = store.shard_writer(&file).unwrap();
        let mut tail = ShardTail::new(store.shard_path(&file));
        assert!(tail.poll().unwrap().is_empty());
        w.append(trial(0)).unwrap();
        w.append(trial(1)).unwrap();
        assert_eq!(tail.poll().unwrap().len(), 2);
        // A torn frame stays unconsumed until completed.
        let framed = encode_frame(&trial(2).to_json());
        let (head, rest) = framed.as_bytes().split_at(12);
        let path = store.shard_path(&file);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(head).unwrap();
        drop(f);
        assert!(tail.poll().unwrap().is_empty());
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(rest).unwrap();
        drop(f);
        let got = tail.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].trial, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_create_open_update_round_trips() {
        let dir = temp_store_dir("manifest");
        let store = RunStore::create(&dir, manifest()).unwrap();
        assert!(
            RunStore::create(&dir, manifest()).is_err(),
            "create refuses to clobber an existing store"
        );
        store
            .update_manifest(|m| {
                m.shards.push(ShardMeta {
                    label: "segm/dup-val".to_string(),
                    benchmark: "segm".to_string(),
                    technique: "dup-val".to_string(),
                    file: shard_file_name("segm/dup-val"),
                    plan_hash: u64::MAX - 7,
                    golden_dyn_insts: 99,
                    completed: 4,
                    complete: false,
                    wall_ms: 17,
                    worker_files: Vec::new(),
                });
            })
            .unwrap();
        let reopened = RunStore::open(&dir).unwrap();
        let m = reopened.manifest();
        assert_eq!(m, store.manifest());
        let shard = m.shard("segm/dup-val").unwrap();
        assert_eq!(shard.completed, 4);
        assert_eq!(shard.plan_hash, u64::MAX - 7, "u64 hashes survive JSON");
        assert!(m.shard("nope").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_files_round_trip_and_stay_absent_when_empty() {
        let mut meta = ShardMeta {
            label: "segm/dup-val".to_string(),
            benchmark: "segm".to_string(),
            technique: "dup-val".to_string(),
            file: shard_file_name("segm/dup-val"),
            plan_hash: 1,
            golden_dyn_insts: 2,
            completed: 0,
            complete: false,
            wall_ms: 0,
            worker_files: Vec::new(),
        };
        // Pre-fleet manifest bytes: no worker_files key at all.
        let v = meta.to_value();
        assert!(v.get("worker_files").is_none());
        assert_eq!(ShardMeta::from_value(&v).unwrap(), meta);

        meta.worker_files = vec![
            shard_file_name_worker("segm/dup-val", 0),
            shard_file_name_worker("segm/dup-val", 1),
        ];
        let v = meta.to_value();
        let back = ShardMeta::from_value(&v).unwrap();
        assert_eq!(back, meta);
        assert_eq!(back.worker_files[1], "segm.dup-val.w1.shard.jsonl");
    }

    #[test]
    fn read_shard_files_concatenates_primary_and_worker_files() {
        let dir = temp_store_dir("merged");
        let store = RunStore::create(&dir, manifest()).unwrap();
        let meta = ShardMeta {
            label: "b/t".to_string(),
            benchmark: "b".to_string(),
            technique: "t".to_string(),
            file: shard_file_name("b/t"),
            plan_hash: 0,
            golden_dyn_insts: 0,
            completed: 0,
            complete: false,
            wall_ms: 0,
            worker_files: vec![
                shard_file_name_worker("b/t", 0),
                shard_file_name_worker("b/t", 1),
            ],
        };
        // Primary file holds trial 0; worker 0 holds 1-2 (and a torn
        // tail); worker 1's file never got created (worker died before
        // its first append) and must read as empty.
        store
            .shard_writer(&meta.file)
            .unwrap()
            .append(trial(0))
            .unwrap();
        let w0 = store.shard_writer(&meta.worker_files[0]).unwrap();
        w0.append(trial(1)).unwrap();
        w0.append(trial(2)).unwrap();
        drop(w0);
        let mut f = OpenOptions::new()
            .append(true)
            .open(store.shard_path(&meta.worker_files[0]))
            .unwrap();
        f.write_all(b"000000aa {\"torn").unwrap();
        drop(f);
        let trials = store.read_shard_files(&meta).unwrap();
        assert_eq!(
            trials.iter().map(|t| t.trial).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
