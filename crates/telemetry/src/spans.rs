//! Lightweight monotonic span timers feeding the [`MetricsRegistry`].
//!
//! A *span* is a named wall-time measurement: [`Stopwatch`] reads the
//! monotonic clock, [`SpanSet`] accumulates the resulting durations as
//! nanosecond [`Histogram`]s keyed by span name. Spans measure the
//! harness, never the experiment: campaign phase attribution and bench
//! reports read them, but no timing value ever feeds back into
//! execution, fault placement, or outcome classification (see
//! DESIGN.md, "Observability invariants").

use crate::metrics::{Histogram, MetricsRegistry};
use std::collections::BTreeMap;
use std::time::Instant;

/// A monotonic stopwatch over [`Instant`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    mark: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            mark: Instant::now(),
        }
    }

    /// Nanoseconds since the last mark (start or previous lap), without
    /// resetting.
    pub fn elapsed_ns(&self) -> u64 {
        self.mark.elapsed().as_nanos() as u64
    }

    /// Nanoseconds since the last mark, resetting the mark — successive
    /// laps partition wall time into consecutive spans.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.mark).as_nanos() as u64;
        self.mark = now;
        ns
    }
}

/// Named span accumulators: one nanosecond [`Histogram`] per span name,
/// deterministically ordered. Count/sum/quantiles come free from the
/// histogram; [`SpanSet::flush_to`] lands them in a [`MetricsRegistry`]
/// under `span.<name>`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanSet {
    spans: BTreeMap<String, Histogram>,
}

impl SpanSet {
    /// An empty span set.
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Records one `ns`-long occurrence of span `name`.
    pub fn record_ns(&mut self, name: &str, ns: u64) {
        self.spans.entry(name.to_string()).or_default().record(ns);
    }

    /// Times `f` and records its duration under `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.record_ns(name, sw.elapsed_ns());
        out
    }

    /// The histogram for `name`, if any occurrence was recorded.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.spans.get(name)
    }

    /// Total nanoseconds recorded under `name` (0 if absent).
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map_or(0, |h| h.sum())
    }

    /// Iterates `(name, histogram)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.spans.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Folds another span set in (histograms accumulate).
    pub fn merge(&mut self, other: &SpanSet) {
        for (name, h) in &other.spans {
            self.spans.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Writes every span into `m` as a histogram named `span.<name>`.
    pub fn flush_to(&self, m: &mut MetricsRegistry) {
        for (name, h) in &self.spans {
            m.histogram(&format!("span.{name}")).merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_laps_partition_time() {
        let mut sw = Stopwatch::start();
        let a = sw.lap_ns();
        let b = sw.lap_ns();
        // Monotonic clock: laps are non-negative (u64 by construction)
        // and elapsed after two laps only covers the time since the
        // second one.
        let _ = (a, b);
        assert!(sw.elapsed_ns() < u64::MAX);
    }

    #[test]
    fn spanset_records_and_totals() {
        let mut s = SpanSet::new();
        assert!(s.is_empty());
        s.record_ns("decode", 100);
        s.record_ns("decode", 50);
        s.record_ns("golden", 7);
        assert_eq!(s.total_ns("decode"), 150);
        assert_eq!(s.get("decode").unwrap().count(), 2);
        assert_eq!(s.total_ns("absent"), 0);
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["decode", "golden"]);

        let out = s.time("timed", || 42);
        assert_eq!(out, 42);
        assert_eq!(s.get("timed").unwrap().count(), 1);
    }

    #[test]
    fn merge_accumulates_and_flush_lands_in_registry() {
        let mut a = SpanSet::new();
        a.record_ns("x", 10);
        let mut b = SpanSet::new();
        b.record_ns("x", 20);
        b.record_ns("y", 5);
        a.merge(&b);
        assert_eq!(a.total_ns("x"), 30);
        assert_eq!(a.total_ns("y"), 5);

        let mut m = MetricsRegistry::new();
        a.flush_to(&mut m);
        assert_eq!(m.histogram("span.x").sum(), 30);
        assert_eq!(m.histogram("span.x").count(), 2);
        assert_eq!(m.histogram("span.y").count(), 1);
    }
}
