//! Dependency-free metrics core: counters, gauges, and log-bucketed
//! histograms, collected in a [`MetricsRegistry`] that serializes to
//! JSON.
//!
//! Everything here is plain `std`: campaigns record into thread-local
//! registries and [`MetricsRegistry::merge`] them at the end, so the hot
//! path never takes a lock.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A monotonically increasing count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds another counter in (for cross-thread aggregation).
    pub fn merge(&mut self, other: &Counter) {
        self.value += other.value;
    }
}

/// A last-write-wins measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket *i* ≥ 1
/// holds values in `[2^(i-1), 2^i)`.
const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Constant memory regardless of range, exact `count`/`sum`/`min`/`max`,
/// and percentile estimates accurate to within the enclosing
/// power-of-two bucket (linear interpolation inside the bucket).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` range of values a bucket covers.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (index - 1);
        let hi = if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        };
        (lo, hi)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`): the value below
    /// which a fraction `q` of the samples fall. The estimate is exact
    /// to the enclosing power-of-two bucket and interpolated linearly
    /// inside it; `min`/`max` clamp the ends so `quantile(0.0)` and
    /// `quantile(1.0)` are exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let end = seen + n;
            if rank <= end as f64 {
                let (lo, hi) = bucket_bounds(i);
                let lo = lo.max(self.min());
                let hi = hi.min(self.max);
                // Position of the target rank within this bucket.
                let within = (rank - seen as f64) / n as f64;
                return lo + ((hi - lo) as f64 * within).round() as u64;
            }
            seen = end;
        }
        self.max
    }

    /// Folds another histogram in (for cross-thread aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`] (boxed: its bucket array dwarfs the scalar
    /// variants).
    Histogram(Box<Histogram>),
}

/// A named collection of metrics with deterministic (sorted) iteration
/// and JSON serialization.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        let m = self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(Counter::default()));
        match m {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        let m = self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Gauge(Gauge::default()));
        match m {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        let m = self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Histogram(Box::default()));
        match m {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry in: counters and histograms accumulate,
    /// gauges take the other registry's value (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if a name is registered with different types in the two
    /// registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in &other.metrics {
            match m {
                Metric::Counter(c) => self.counter(name).merge(c),
                Metric::Gauge(g) => self.gauge(name).set(g.get()),
                Metric::Histogram(h) => self.histogram(name).merge(h),
            }
        }
    }

    /// Serializes the registry to a JSON object keyed by metric name, in
    /// name order (byte-stable for identical contents).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            match m {
                Metric::Counter(c) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{}}}", c.get());
                }
                Metric::Gauge(g) => {
                    out.push_str("{\"type\":\"gauge\",\"value\":");
                    push_json_f64(&mut out, g.get());
                    out.push('}');
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"mean\":",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                    push_json_f64(&mut out, h.mean());
                    let _ = write!(
                        out,
                        ",\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99)
                    );
                    for (j, (lo, hi, n)) in h.nonzero_buckets().into_iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{lo},{hi},{n}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes, and
/// control characters escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` as a JSON number (`null` for NaN/inf, which JSON
/// cannot represent).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_of(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_of(hi), i, "hi of bucket {i}");
            assert!(lo <= hi);
        }
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 0, 1000, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1018);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.6).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        // 1..=1000 uniformly: the true p50 is 500, inside bucket
        // [512, 1023]... no: 500 lies in [256, 511]. Log bucketing must
        // return an estimate inside the enclosing bucket (factor-2
        // accuracy), and the extremes must be exact.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5);
        assert!((256..=511).contains(&p50), "p50 estimate {p50}");
        let p90 = h.quantile(0.9);
        assert!((512..=1000).contains(&p90), "p90 estimate {p90}");
        // Single-valued distribution: every quantile is that value.
        let mut one = Histogram::new();
        for _ in 0..100 {
            one.record(42);
        }
        for q in [0.0, 0.1, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 42, "q={q}");
        }
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1u64, 7, 130, 9000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 2, 64, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn counter_merge_across_worker_threads() {
        // Each worker counts into its own registry; the main thread
        // merges. The total must equal the sum of per-thread counts.
        let partials: Vec<MetricsRegistry> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|t| {
                    scope.spawn(move || {
                        let mut reg = MetricsRegistry::new();
                        for i in 0..100 + t {
                            reg.counter("trials").inc();
                            reg.histogram("latency").record(i);
                        }
                        reg
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut total = MetricsRegistry::new();
        for p in &partials {
            total.merge(p);
        }
        let expected: u64 = (0..4).map(|t| 100 + t).sum();
        assert_eq!(total.counter("trials").get(), expected);
        assert_eq!(total.histogram("latency").count(), expected);
    }

    #[test]
    fn registry_json_is_deterministic_and_wellformed() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.count").add(3);
        reg.gauge("a.gauge").set(1.5);
        reg.histogram("m.hist").record(7);
        let j1 = reg.to_json();
        let j2 = reg.clone().to_json();
        assert_eq!(j1, j2, "registry JSON must be byte-stable");
        // Sorted keys: a.gauge before m.hist before z.count.
        let a = j1.find("a.gauge").unwrap();
        let m = j1.find("m.hist").unwrap();
        let z = j1.find("z.count").unwrap();
        assert!(a < m && m < z, "{j1}");
        assert!(j1.starts_with('{') && j1.ends_with('}'));
        assert!(j1.contains("\"type\":\"counter\",\"value\":3"), "{j1}");
        assert!(j1.contains("\"type\":\"gauge\",\"value\":1.5"), "{j1}");
        assert!(j1.contains("\"buckets\":[[4,7,1]]"), "{j1}");
    }

    #[test]
    fn json_escapes_and_nonfinite() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("weird\"name\\with\ncontrol").set(f64::INFINITY);
        let j = reg.to_json();
        assert!(j.contains("\"weird\\\"name\\\\with\\ncontrol\""), "{j}");
        assert!(j.contains("\"value\":null"), "{j}");
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("x").set(1.0);
        reg.counter("x");
    }

    // Edge-case locks for the paths `spans` now feeds: an empty
    // histogram, a single sample, the quantile extremes, and merging
    // with empties must all keep their current behavior.

    #[test]
    fn single_sample_histogram_stats() {
        let mut h = Histogram::new();
        h.record(77);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 77);
        assert_eq!(h.min(), 77);
        assert_eq!(h.max(), 77);
        assert_eq!(h.mean(), 77.0);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(h.quantile(q), 77, "q={q}");
        }
    }

    #[test]
    fn quantile_extremes_are_exact_min_and_max() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 12, 45_000, 0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 45_000);
    }

    #[test]
    fn merge_involving_empty_histograms() {
        // empty <- empty stays empty.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e, Histogram::new());
        assert_eq!(e.count(), 0);

        // populated <- empty is a no-op.
        let mut pop = Histogram::new();
        for v in [5u64, 10, 1000] {
            pop.record(v);
        }
        let before = pop.clone();
        pop.merge(&Histogram::new());
        assert_eq!(pop, before);
        assert_eq!(pop.min(), 5);
        assert_eq!(pop.max(), 1000);

        // empty <- populated equals the populated one.
        let mut fresh = Histogram::new();
        fresh.merge(&pop);
        assert_eq!(fresh, pop);
        assert_eq!(fresh.min(), 5);
        assert_eq!(fresh.quantile(1.0), 1000);
    }
}
