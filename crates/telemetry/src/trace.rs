//! Tracing observers for the VM.
//!
//! [`TraceObserver`] is a full trace: per-opcode dynamic instruction
//! counts, per-[`CheckKind`] check firings, and detection latency —
//! the dynamic-instruction distance between a fault injection and the
//! first failing check. [`CheckCounter`] is the cheap subset that only
//! attributes check firings, for false-positive and cross-validation
//! measurements.
//!
//! Both mirror the VM's dynamic-instruction count by replaying its
//! increment ordering: the interpreter bumps `dyn_count` *before*
//! calling `on_exec` / `on_term`, so these observers increment at the
//! top of those hooks. A check failure reported through
//! [`Observer::on_check_fail`] therefore sees the same post-increment
//! count the VM would put in a trap, which is the convention the
//! campaign classifier uses for its hardware-detection window.

use crate::metrics::Histogram;
use softft_ir::function::Function;
use softft_ir::inst::{CheckKind, Op};
use softft_ir::{BlockId, FuncId, InstId};
use softft_vm::fault::InjectionRecord;
use softft_vm::{Observer, OpClass, OpCounts, SuffixObserver};

/// All [`CheckKind`] variants in canonical order (the order used for
/// reports, JSON, and [`CheckKindCounts`] indexing).
pub const CHECK_KINDS: [CheckKind; 7] = [
    CheckKind::DupMismatch,
    CheckKind::ValueSingle,
    CheckKind::ValuePair,
    CheckKind::ValueRange,
    CheckKind::StoreGuard,
    CheckKind::BranchGuard,
    CheckKind::CfcSignature,
];

fn kind_index(kind: CheckKind) -> usize {
    match kind {
        CheckKind::DupMismatch => 0,
        CheckKind::ValueSingle => 1,
        CheckKind::ValuePair => 2,
        CheckKind::ValueRange => 3,
        CheckKind::StoreGuard => 4,
        CheckKind::BranchGuard => 5,
        CheckKind::CfcSignature => 6,
    }
}

/// Stable lower-case label for a check kind (used in JSONL events and
/// report columns).
pub fn check_kind_label(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::DupMismatch => "dup-mismatch",
        CheckKind::ValueSingle => "value-single",
        CheckKind::ValuePair => "value-pair",
        CheckKind::ValueRange => "value-range",
        CheckKind::StoreGuard => "store-guard",
        CheckKind::BranchGuard => "branch-guard",
        CheckKind::CfcSignature => "cfc-signature",
    }
}

/// Inverse of [`check_kind_label`], for rebuilding counts from persisted
/// label/count pairs (run-store replay).
pub fn check_kind_from_label(label: &str) -> Option<CheckKind> {
    CHECK_KINDS
        .into_iter()
        .find(|&k| check_kind_label(k) == label)
}

/// Per-[`CheckKind`] firing counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckKindCounts {
    counts: [u64; 7],
}

impl CheckKindCounts {
    /// All zero.
    pub fn new() -> Self {
        CheckKindCounts::default()
    }

    /// Adds one firing of `kind`.
    pub fn inc(&mut self, kind: CheckKind) {
        self.counts[kind_index(kind)] += 1;
    }

    /// Adds `n` firings of `kind` (rebuilding counts from persisted
    /// pairs).
    pub fn add(&mut self, kind: CheckKind, n: u64) {
        self.counts[kind_index(kind)] += n;
    }

    /// Firings of `kind`.
    pub fn get(&self, kind: CheckKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Total firings across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(kind, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CheckKind, u64)> + '_ {
        CHECK_KINDS.iter().map(|&k| (k, self.get(k)))
    }

    /// Folds another count set in.
    pub fn merge(&mut self, other: &CheckKindCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Adds the per-kind delta `boundary..end` (golden-suffix
    /// fast-forward; see [`SuffixObserver`]).
    pub fn merge_delta(&mut self, boundary: &CheckKindCounts, end: &CheckKindCounts) {
        for ((a, b), e) in self
            .counts
            .iter_mut()
            .zip(boundary.counts.iter())
            .zip(end.counts.iter())
        {
            *a += e - b;
        }
    }
}

/// An observer that only attributes check firings to their
/// [`CheckKind`] — cheap enough for false-positive runs where every
/// instruction of a clean execution is observed.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckCounter {
    /// Firing counts by kind.
    pub counts: CheckKindCounts,
}

impl Observer for CheckCounter {
    fn on_check_fail(&mut self, _func: FuncId, f: &Function, inst: InstId) {
        if let Op::Check { kind, .. } = f.inst(inst).op {
            self.counts.inc(kind);
        }
    }
}

impl SuffixObserver for CheckCounter {
    fn fast_forward(&mut self, boundary: &Self, end: &Self) {
        self.counts.merge_delta(&boundary.counts, &end.counts);
    }
}

/// A full execution trace for one VM run.
///
/// Records per-opcode dynamic instruction counts, check firings by
/// kind, the injection point (via [`Observer::on_inject`]), and the
/// first detection event, from which [`TraceObserver::detection_latency`]
/// derives the dynamic-instruction distance from fault to detection.
#[derive(Clone, Debug, Default)]
pub struct TraceObserver {
    /// Mirror of the VM's dynamic instruction count.
    dyn_count: u64,
    /// Dynamic instruction counts by opcode class (terminators split as
    /// `br`/`condbr`/`ret`). This is the *same* dense tally
    /// ([`OpCounts`]) the VM profiler keeps, so the observer-side and
    /// VM-side opcode counts agree by construction instead of by
    /// parallel bookkeeping.
    pub opcodes: OpCounts,
    /// Check firings by kind.
    pub checks: CheckKindCounts,
    /// Dynamic index of the fault injection, if one occurred.
    inject_at: Option<u64>,
    /// Dynamic index of the first failing check, if any.
    first_detect: Option<u64>,
    /// Which check kind detected first, if any.
    first_detect_kind: Option<CheckKind>,
}

impl TraceObserver {
    /// A fresh trace.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// Dynamic instructions observed so far (matches the VM's count).
    pub fn dyn_count(&self) -> u64 {
        self.dyn_count
    }

    /// Dynamic index at which the fault was injected, if one was.
    pub fn inject_at(&self) -> Option<u64> {
        self.inject_at
    }

    /// Dynamic index of the first failing check, if any fired.
    pub fn first_detect(&self) -> Option<u64> {
        self.first_detect
    }

    /// The check kind that fired first, if any.
    pub fn first_detect_kind(&self) -> Option<CheckKind> {
        self.first_detect_kind
    }

    /// Dynamic instructions between injection and the first failing
    /// check; `None` unless both happened (in that order).
    pub fn detection_latency(&self) -> Option<u64> {
        match (self.inject_at, self.first_detect) {
            (Some(inj), Some(det)) if det >= inj => Some(det - inj),
            _ => None,
        }
    }

    /// Records this trace's detection latency into `hist`, if there is
    /// one to record.
    pub fn record_latency_into(&self, hist: &mut Histogram) {
        if let Some(lat) = self.detection_latency() {
            hist.record(lat);
        }
    }
}

impl Observer for TraceObserver {
    fn on_exec(&mut self, _func: FuncId, f: &Function, inst: InstId) {
        // The VM increments before calling us; mirror that ordering.
        self.dyn_count += 1;
        self.opcodes.record(OpClass::of_op(&f.inst(inst).op));
    }

    fn on_term(&mut self, _func: FuncId, f: &Function, block: BlockId) {
        self.dyn_count += 1;
        let term = f
            .block(block)
            .term
            .as_ref()
            .expect("verified function has terminators");
        self.opcodes.record(OpClass::of_term(term));
    }

    fn on_check_fail(&mut self, _func: FuncId, f: &Function, inst: InstId) {
        if let Op::Check { kind, .. } = f.inst(inst).op {
            self.checks.inc(kind);
            if self.first_detect.is_none() {
                // on_check_fail follows on_exec for the same instruction,
                // so dyn_count here equals the trap's at_dyn convention.
                self.first_detect = Some(self.dyn_count);
                self.first_detect_kind = Some(kind);
            }
        }
    }

    fn on_inject(&mut self, rec: &InjectionRecord) {
        self.inject_at = Some(rec.at_dyn);
    }
}

impl SuffixObserver for TraceObserver {
    fn fast_forward(&mut self, boundary: &Self, end: &Self) {
        self.dyn_count = end.dyn_count;
        self.opcodes.merge_delta(&boundary.opcodes, &end.opcodes);
        self.checks.merge_delta(&boundary.checks, &end.checks);
        // The injection point is the trial's own (the golden run has
        // none). A first detection in the golden suffix only counts if
        // neither the trial nor the shared golden prefix saw one.
        if self.first_detect.is_none() && boundary.first_detect.is_none() {
            self.first_detect = end.first_detect;
            self.first_detect_kind = end.first_detect_kind;
        }
    }

    fn fold_cycles(&mut self, anchor: &Self, detect: &Self, cycles: u64) {
        // A proven spin cycle contains zero check firings (a counting
        // check would break the state recurrence; a trapping check would
        // end the run), so only the execution counters scale — checks and
        // first-detect are untouched by construction.
        self.dyn_count += (detect.dyn_count - anchor.dyn_count) * cycles;
        self.opcodes
            .merge_cycles(&anchor.opcodes, &detect.opcodes, cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_matches_canonical_order() {
        for (i, &k) in CHECK_KINDS.iter().enumerate() {
            assert_eq!(kind_index(k), i);
        }
    }

    #[test]
    fn labels_round_trip_and_add_accumulates() {
        for k in CHECK_KINDS {
            assert_eq!(check_kind_from_label(check_kind_label(k)), Some(k));
        }
        assert_eq!(check_kind_from_label("bogus"), None);
        let mut c = CheckKindCounts::new();
        c.add(CheckKind::ValuePair, 7);
        c.inc(CheckKind::ValuePair);
        assert_eq!(c.get(CheckKind::ValuePair), 8);
    }

    #[test]
    fn labels_are_unique_and_kebab() {
        let labels: Vec<&str> = CHECK_KINDS.iter().map(|&k| check_kind_label(k)).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for l in labels {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{l}");
        }
    }

    #[test]
    fn counts_inc_and_merge() {
        let mut a = CheckKindCounts::new();
        a.inc(CheckKind::DupMismatch);
        a.inc(CheckKind::DupMismatch);
        a.inc(CheckKind::ValueRange);
        let mut b = CheckKindCounts::new();
        b.inc(CheckKind::ValueRange);
        b.inc(CheckKind::CfcSignature);
        a.merge(&b);
        assert_eq!(a.get(CheckKind::DupMismatch), 2);
        assert_eq!(a.get(CheckKind::ValueRange), 2);
        assert_eq!(a.get(CheckKind::CfcSignature), 1);
        assert_eq!(a.total(), 5);
        let in_order: Vec<u64> = a.iter().map(|(_, n)| n).collect();
        assert_eq!(in_order, vec![2, 0, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn fast_forward_adds_suffix_deltas_only() {
        let add = OpClass::from_label("add").unwrap();
        let mul = OpClass::from_label("mul").unwrap();
        let br = OpClass::from_label("br").unwrap();
        let bump = |c: &mut OpCounts, class, n| {
            for _ in 0..n {
                c.record(class);
            }
        };

        // Golden observer at the convergence boundary and at completion.
        let mut boundary = TraceObserver::new();
        boundary.dyn_count = 100;
        bump(&mut boundary.opcodes, add, 60);
        boundary.checks.inc(CheckKind::DupMismatch);
        let mut end = boundary.clone();
        end.dyn_count = 250;
        bump(&mut end.opcodes, add, 90);
        bump(&mut end.opcodes, br, 40);
        end.checks.inc(CheckKind::DupMismatch);
        end.first_detect = Some(180);
        end.first_detect_kind = Some(CheckKind::DupMismatch);

        // The trial resumed late, executed its own instructions, and
        // converged at the boundary.
        let mut trial = TraceObserver::new();
        trial.dyn_count = 100;
        bump(&mut trial.opcodes, add, 55);
        bump(&mut trial.opcodes, mul, 5);
        trial.inject_at = Some(90);
        trial.fast_forward(&boundary, &end);

        assert_eq!(trial.dyn_count, 250);
        assert_eq!(trial.opcodes.get(add), 55 + 90);
        assert_eq!(trial.opcodes.get(mul), 5);
        assert_eq!(trial.opcodes.get(br), 40);
        // Suffix check delta is end - boundary, not end's total.
        assert_eq!(trial.checks.get(CheckKind::DupMismatch), 1);
        // inject_at stays the trial's own; the golden-suffix detection
        // counts because neither trial nor shared prefix saw one.
        assert_eq!(trial.inject_at, Some(90));
        assert_eq!(trial.first_detect, Some(180));

        // But a detection in the shared prefix (present in `boundary`)
        // would already be in the trial's state — don't overwrite.
        let mut prefix_detected = TraceObserver::new();
        prefix_detected.first_detect = Some(40);
        prefix_detected.first_detect_kind = Some(CheckKind::ValueRange);
        let mut b2 = boundary.clone();
        b2.first_detect = Some(40);
        b2.first_detect_kind = Some(CheckKind::ValueRange);
        let mut t2 = prefix_detected.clone();
        t2.fast_forward(&b2, &end);
        assert_eq!(t2.first_detect, Some(40));
        assert_eq!(t2.first_detect_kind, Some(CheckKind::ValueRange));
    }

    #[test]
    fn latency_requires_both_endpoints() {
        let mut t = TraceObserver::new();
        assert_eq!(t.detection_latency(), None);
        t.inject_at = Some(100);
        assert_eq!(t.detection_latency(), None);
        t.first_detect = Some(140);
        assert_eq!(t.detection_latency(), Some(40));
        // A check that fired before the injection (false positive in a
        // counting run) is not a detection of this fault.
        t.first_detect = Some(50);
        assert_eq!(t.detection_latency(), None);
    }
}
