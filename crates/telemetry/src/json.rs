//! Minimal dependency-free JSON: a lossless value tree, a recursive
//! descent parser, and a compact writer.
//!
//! The run store ([`crate::runstore`]) must parse back exactly what it
//! wrote — including full-range `u64` seeds and bit patterns, which a
//! float-backed JSON tree would silently round. [`JsonValue::Number`]
//! therefore keeps the source text verbatim and only converts on
//! access ([`JsonValue::as_u64`] / [`JsonValue::as_f64`]), and objects
//! preserve insertion order so a write → parse → write round trip is
//! byte-stable for our own output. This mirrors the metrics registry's
//! hand-rolled-JSON policy: persistence must not depend on an external
//! serializer being present.

use std::fmt::Write as _;

/// One JSON value. Numbers keep their raw source text (lossless).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its exact source text.
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A number value from anything displayable as one (integers,
    /// floats formatted upstream).
    pub fn num(n: impl std::fmt::Display) -> JsonValue {
        JsonValue::Number(n.to_string())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, when it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, in insertion order.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(raw) => out.push_str(raw),
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for embedding in a JSON literal (no quotes added).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate by parsing as f64; keep the raw text for lossless u64.
    raw.parse::<f64>()
        .map_err(|e| format!("bad number {raw:?}: {e}"))?;
    Ok(JsonValue::Number(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("short \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates never appear in our own output;
                        // map them to the replacement character rather
                        // than erroring on foreign input.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = JsonValue::parse(
            r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e3}, "e": 18446744073709551615}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], JsonValue::Null);
        assert_eq!(b[2].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
        // Full-range u64 survives (a float tree would round this).
        assert_eq!(v.get("e").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn compact_write_parse_write_is_byte_stable() {
        let v = JsonValue::Object(vec![
            ("seed".to_string(), JsonValue::num(u64::MAX)),
            ("label".to_string(), JsonValue::str("a\"b\\c")),
            (
                "ops".to_string(),
                JsonValue::Array(vec![JsonValue::num(1), JsonValue::Bool(false)]),
            ),
            ("none".to_string(), JsonValue::Null),
        ]);
        let once = v.to_json();
        let twice = JsonValue::parse(&once).unwrap().to_json();
        assert_eq!(once, twice);
        assert!(once.starts_with("{\"seed\":18446744073709551615"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\":1} x").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_controls() {
        let s = "tab\t nl\n quote\" back\\ bell\u{7}";
        let wrapped = format!("\"{}\"", escape_json(s));
        assert_eq!(JsonValue::parse(&wrapped).unwrap().as_str(), Some(s));
    }
}
