//! Streaming campaign progress.
//!
//! A campaign that runs thousands of trials across worker threads is
//! silent until it returns. This module gives it a heartbeat: the
//! campaign driver feeds per-trial completions into a
//! [`ProgressTracker`], which throttles them into periodic
//! [`ProgressUpdate`] snapshots and hands those to a [`ProgressSink`]
//! — human text on stderr ([`TextSink`]) or machine-readable JSONL
//! ([`JsonlSink`]), selected by `repro --progress text|jsonl`.
//!
//! Progress is pure observation: it reads atomic counters the campaign
//! already maintains and never feeds anything back, so enabling a sink
//! cannot perturb campaign results (see DESIGN.md, "Observability
//! invariants"). The sink registry is process-global so the campaign
//! crate does not need a config plumbing change for every caller.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Minimum milliseconds between emitted updates (final update always
/// emits).
const EMIT_INTERVAL_MS: u64 = 250;

/// One snapshot of campaign progress, as handed to a [`ProgressSink`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressUpdate {
    /// What is running, e.g. `"segm/dup-val"`.
    pub label: String,
    /// Trials completed so far.
    pub done: u64,
    /// Total trials planned.
    pub total: u64,
    /// Wall seconds since the tracker was created.
    pub elapsed_secs: f64,
    /// Completion rate (0 until the first trial lands).
    pub trials_per_sec: f64,
    /// Estimated seconds remaining (0 when done or rate unknown).
    pub eta_secs: f64,
    /// Nonzero outcome counts, in the caller's canonical outcome order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// True only for the final update.
    pub finished: bool,
}

impl ProgressUpdate {
    /// Renders a one-line human-readable form.
    pub fn to_text(&self) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let tail = if self.finished {
            format!("done in {:.1}s", self.elapsed_secs)
        } else {
            format!("ETA {:.0}s", self.eta_secs)
        };
        format!(
            "[{}] {}/{} trials ({:.1}%) | {:.1} trials/s | {} | {}",
            self.label, self.done, self.total, pct, self.trials_per_sec, tail, mix
        )
    }

    /// Renders a single JSONL record (hand-rolled: the schema is flat
    /// and fixed, and labels contain no characters needing escapes
    /// beyond `"` and `\`, which we escape anyway).
    pub fn to_jsonl(&self) -> String {
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"type\":\"progress\",\"label\":\"{}\",\"done\":{},\"total\":{},",
                "\"elapsed_secs\":{:.3},\"trials_per_sec\":{:.3},\"eta_secs\":{:.3},",
                "\"outcomes\":{{{}}},\"finished\":{}}}"
            ),
            escape_json(&self.label),
            self.done,
            self.total,
            self.elapsed_secs,
            self.trials_per_sec,
            self.eta_secs,
            mix,
            self.finished
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receives throttled progress snapshots. Implementations must be
/// cheap and must not panic: they run on campaign worker threads.
pub trait ProgressSink: Send + Sync {
    /// Consumes one snapshot.
    fn emit(&self, update: &ProgressUpdate);
}

/// Human-readable one-line-per-update sink writing to stderr.
#[derive(Debug, Default)]
pub struct TextSink;

impl ProgressSink for TextSink {
    fn emit(&self, update: &ProgressUpdate) {
        eprintln!("{}", update.to_text());
    }
}

/// Machine-readable JSONL sink writing to stderr (stdout stays clean
/// for exhibit output).
#[derive(Debug, Default)]
pub struct JsonlSink;

impl ProgressSink for JsonlSink {
    fn emit(&self, update: &ProgressUpdate) {
        eprintln!("{}", update.to_jsonl());
    }
}

static SINK: RwLock<Option<Arc<dyn ProgressSink>>> = RwLock::new(None);

/// Installs (or clears, with `None`) the process-global progress sink.
pub fn set_progress_sink(sink: Option<Arc<dyn ProgressSink>>) {
    *SINK.write().expect("progress sink lock poisoned") = sink;
}

/// The currently installed progress sink, if any.
pub fn progress_sink() -> Option<Arc<dyn ProgressSink>> {
    SINK.read().expect("progress sink lock poisoned").clone()
}

/// Per-campaign progress state: lock-free counters bumped by worker
/// threads, throttled emission to a [`ProgressSink`].
pub struct ProgressTracker {
    sink: Arc<dyn ProgressSink>,
    label: String,
    total: u64,
    start: Instant,
    done: AtomicU64,
    outcome_labels: Vec<&'static str>,
    outcome_counts: Vec<AtomicU64>,
    last_emit: Mutex<Instant>,
}

impl ProgressTracker {
    /// A tracker reporting to `sink`. `outcome_labels` fixes the
    /// index space used by [`ProgressTracker::trial_done`] (the
    /// campaign passes its canonical outcome order).
    pub fn new(
        sink: Arc<dyn ProgressSink>,
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Self {
        let start = Instant::now();
        let outcome_counts = outcome_labels.iter().map(|_| AtomicU64::new(0)).collect();
        ProgressTracker {
            sink,
            label: label.into(),
            total,
            start,
            done: AtomicU64::new(0),
            outcome_labels,
            outcome_counts,
            last_emit: Mutex::new(start),
        }
    }

    /// A tracker bound to the global sink, or `None` when no sink is
    /// installed (the common case — zero overhead for the campaign).
    pub fn for_registered(
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Option<Self> {
        progress_sink().map(|sink| ProgressTracker::new(sink, label, total, outcome_labels))
    }

    /// Records one completed trial with the given outcome index and
    /// emits a throttled update. Safe to call from any worker thread.
    pub fn trial_done(&self, outcome_index: usize) {
        if let Some(c) = self.outcome_counts.get(outcome_index) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        // Throttle: only the thread that wins the try_lock may emit,
        // and only if the interval has passed. Contended or too-soon
        // updates are dropped — the final update in finish() always
        // lands.
        if let Ok(mut last) = self.last_emit.try_lock() {
            let now = Instant::now();
            if now.duration_since(*last).as_millis() as u64 >= EMIT_INTERVAL_MS {
                *last = now;
                drop(last);
                self.sink.emit(&self.snapshot(done, false));
            }
        }
    }

    /// Emits the final update (always, regardless of throttle).
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.sink.emit(&self.snapshot(done, true));
    }

    fn snapshot(&self, done: u64, finished: bool) -> ProgressUpdate {
        let elapsed_secs = self.start.elapsed().as_secs_f64();
        let trials_per_sec = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        let eta_secs = if finished || trials_per_sec <= 0.0 {
            0.0
        } else {
            (self.total.saturating_sub(done)) as f64 / trials_per_sec
        };
        let outcomes = self
            .outcome_labels
            .iter()
            .zip(&self.outcome_counts)
            .filter_map(|(label, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((*label, n))
            })
            .collect();
        ProgressUpdate {
            label: self.label.clone(),
            done,
            total: self.total,
            elapsed_secs,
            trials_per_sec,
            eta_secs,
            outcomes,
            finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct RecordingSink {
        updates: Mutex<Vec<ProgressUpdate>>,
    }

    impl ProgressSink for RecordingSink {
        fn emit(&self, update: &ProgressUpdate) {
            self.updates.lock().unwrap().push(update.clone());
        }
    }

    #[test]
    fn tracker_counts_outcomes_and_finishes() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "bench/tech", 4, vec!["masked", "failure"]);
        t.trial_done(0);
        t.trial_done(1);
        t.trial_done(0);
        t.trial_done(0);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().expect("finish always emits");
        assert!(last.finished);
        assert_eq!(last.done, 4);
        assert_eq!(last.total, 4);
        assert_eq!(last.outcomes, vec![("masked", 3), ("failure", 1)]);
        assert_eq!(last.label, "bench/tech");
    }

    #[test]
    fn out_of_range_outcome_index_is_ignored() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "b", 1, vec!["masked"]);
        t.trial_done(99);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().unwrap();
        assert_eq!(last.done, 1);
        assert!(last.outcomes.is_empty());
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let u = ProgressUpdate {
            label: "a\"b".to_string(),
            done: 2,
            total: 10,
            elapsed_secs: 1.0,
            trials_per_sec: 2.0,
            eta_secs: 4.0,
            outcomes: vec![("masked", 2)],
            finished: false,
        };
        let line = u.to_jsonl();
        assert!(line.starts_with("{\"type\":\"progress\""));
        assert!(line.contains("\"label\":\"a\\\"b\""));
        assert!(line.contains("\"done\":2"));
        assert!(line.contains("\"outcomes\":{\"masked\":2}"));
        assert!(line.ends_with("\"finished\":false}"));
        let text = u.to_text();
        assert!(text.contains("2/10 trials"));
        assert!(text.contains("masked 2"));
    }

    #[test]
    fn global_sink_registry_set_get_clear() {
        // Only this test touches the process-global sink.
        let sink = Arc::new(RecordingSink::default());
        set_progress_sink(Some(sink.clone()));
        let t = ProgressTracker::for_registered("x", 1, vec!["masked"]).expect("sink installed");
        t.trial_done(0);
        t.finish();
        set_progress_sink(None);
        assert!(progress_sink().is_none());
        assert!(!sink.updates.lock().unwrap().is_empty());
    }
}
