//! Streaming campaign progress.
//!
//! A campaign that runs thousands of trials across worker threads is
//! silent until it returns. This module gives it a heartbeat: the
//! campaign driver feeds per-trial completions into a
//! [`ProgressTracker`], which throttles them into periodic
//! [`ProgressUpdate`] snapshots and hands those to a [`ProgressSink`]
//! — human text on stderr ([`TextSink`]) or machine-readable JSONL
//! ([`JsonlSink`]), selected by `repro --progress text|jsonl`.
//!
//! Progress is pure observation: it reads atomic counters the campaign
//! already maintains and never feeds anything back, so enabling a sink
//! cannot perturb campaign results (see DESIGN.md, "Observability
//! invariants"). The sink registry is process-global so the campaign
//! crate does not need a config plumbing change for every caller.
//!
//! Observation must also not perturb *throughput*: the stock sinks
//! hand rendered lines to a dedicated writer thread over a bounded
//! queue, and when that queue is full — a wedged pipe, a slow terminal
//! — the line is dropped and counted ([`ProgressSink::dropped`])
//! instead of stalling the trial loop. Progress output is lossy by
//! design (it is already throttled); campaign results never are.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Minimum milliseconds between emitted updates (final update always
/// emits).
const EMIT_INTERVAL_MS: u64 = 250;

/// Rendered lines queued to a sink's writer thread before emitters
/// start dropping (a wedged consumer costs bounded memory, zero
/// stalls).
const SINK_QUEUE_LINES: usize = 256;

/// How long [`ProgressSink::flush`] waits for the writer thread to
/// drain before giving up (a wedged writer never drains).
const FLUSH_TIMEOUT: Duration = Duration::from_secs(2);

/// One snapshot of campaign progress, as handed to a [`ProgressSink`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressUpdate {
    /// What is running, e.g. `"segm/dup-val"`.
    pub label: String,
    /// Trials completed so far.
    pub done: u64,
    /// Total trials planned.
    pub total: u64,
    /// Wall seconds since the tracker was created.
    pub elapsed_secs: f64,
    /// Completion rate (0 until the first trial lands).
    pub trials_per_sec: f64,
    /// Estimated seconds remaining (0 when done or rate unknown).
    pub eta_secs: f64,
    /// Nonzero outcome counts, in the caller's canonical outcome order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// True only for the final update.
    pub finished: bool,
}

impl ProgressUpdate {
    /// Renders a one-line human-readable form.
    pub fn to_text(&self) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let tail = if self.finished {
            format!("done in {:.1}s", self.elapsed_secs)
        } else {
            format!("ETA {:.0}s", self.eta_secs)
        };
        format!(
            "[{}] {}/{} trials ({:.1}%) | {:.1} trials/s | {} | {}",
            self.label, self.done, self.total, pct, self.trials_per_sec, tail, mix
        )
    }

    /// Renders a single JSONL record (hand-rolled: the schema is flat
    /// and fixed, and labels contain no characters needing escapes
    /// beyond `"` and `\`, which we escape anyway).
    pub fn to_jsonl(&self) -> String {
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"type\":\"progress\",\"label\":\"{}\",\"done\":{},\"total\":{},",
                "\"elapsed_secs\":{:.3},\"trials_per_sec\":{:.3},\"eta_secs\":{:.3},",
                "\"outcomes\":{{{}}},\"finished\":{}}}"
            ),
            escape_json(&self.label),
            self.done,
            self.total,
            self.elapsed_secs,
            self.trials_per_sec,
            self.eta_secs,
            mix,
            self.finished
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receives throttled progress snapshots. Implementations must be
/// cheap, must not panic, and must never block: they run on campaign
/// worker threads, and a stalled sink would throttle the trial loop it
/// observes.
pub trait ProgressSink: Send + Sync {
    /// Consumes one snapshot.
    fn emit(&self, update: &ProgressUpdate);

    /// Best-effort wait for queued output to reach the underlying
    /// writer (bounded internally; a wedged writer cannot hang the
    /// caller). Default: nothing to drain.
    fn flush(&self) {}

    /// Updates discarded because the sink could not keep up (a wedged
    /// or slow writer). Default: a sink that never drops.
    fn dropped(&self) -> u64 {
        0
    }
}

enum WriterMsg {
    Line(String),
    Flush(SyncSender<()>),
}

/// The non-blocking core of both stock sinks: rendered lines go over a
/// bounded channel to a dedicated writer thread, which performs each
/// line as a single `write_all` + flush so concurrent trackers
/// (interleaved labels) can never shear a line. `try_send` on a full
/// queue drops the line and bumps the counter — the emitting trial
/// loop never waits on the writer.
struct AsyncLineWriter {
    tx: SyncSender<WriterMsg>,
    dropped: AtomicU64,
}

impl AsyncLineWriter {
    fn new(mut out: Box<dyn Write + Send>) -> AsyncLineWriter {
        let (tx, rx) = mpsc::sync_channel::<WriterMsg>(SINK_QUEUE_LINES);
        // The thread exits when every sender is gone (sink dropped).
        // It is deliberately not joined anywhere: a writer wedged in
        // `write_all` would otherwise hang the dropper.
        let _ = std::thread::Builder::new()
            .name("progress-sink-writer".to_string())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        WriterMsg::Line(line) => {
                            let _ = out.write_all(line.as_bytes());
                            let _ = out.flush();
                        }
                        WriterMsg::Flush(ack) => {
                            let _ = out.flush();
                            let _ = ack.send(());
                        }
                    }
                }
            });
        AsyncLineWriter {
            tx,
            dropped: AtomicU64::new(0),
        }
    }

    fn emit(&self, mut line: String) {
        line.push('\n');
        if let Err(TrySendError::Full(_)) = self.tx.try_send(WriterMsg::Line(line)) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Queues a flush marker and waits (bounded) for the writer thread
    /// to acknowledge it — everything queued before the call has then
    /// reached the writer. Returns `false` on timeout (wedged writer).
    fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        // The queue may be transiently full of lines; retry the marker
        // until the deadline rather than blocking on `send`.
        loop {
            match self.tx.try_send(WriterMsg::Flush(ack_tx.clone())) {
                Ok(()) => break,
                Err(TrySendError::Disconnected(_)) => return true,
                Err(TrySendError::Full(_)) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        ack_rx.recv_timeout(remaining).is_ok()
    }
}

/// Human-readable one-line-per-update sink (stderr by default).
pub struct TextSink {
    w: AsyncLineWriter,
}

impl Default for TextSink {
    fn default() -> Self {
        TextSink::new()
    }
}

impl TextSink {
    /// A sink writing to stderr.
    pub fn new() -> Self {
        TextSink::with_writer(Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests, files).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        TextSink {
            w: AsyncLineWriter::new(out),
        }
    }
}

impl ProgressSink for TextSink {
    fn emit(&self, update: &ProgressUpdate) {
        self.w.emit(update.to_text());
    }

    fn flush(&self) {
        self.w.flush(FLUSH_TIMEOUT);
    }

    fn dropped(&self) -> u64 {
        self.w.dropped()
    }
}

/// Machine-readable JSONL sink (stderr by default; stdout stays clean
/// for exhibit output). Each update is exactly one parseable JSON
/// object per line, even under interleaved labels.
pub struct JsonlSink {
    w: AsyncLineWriter,
}

impl Default for JsonlSink {
    fn default() -> Self {
        JsonlSink::new()
    }
}

impl JsonlSink {
    /// A sink writing to stderr.
    pub fn new() -> Self {
        JsonlSink::with_writer(Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests, files).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            w: AsyncLineWriter::new(out),
        }
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&self, update: &ProgressUpdate) {
        self.w.emit(update.to_jsonl());
    }

    fn flush(&self) {
        self.w.flush(FLUSH_TIMEOUT);
    }

    fn dropped(&self) -> u64 {
        self.w.dropped()
    }
}

static SINK: RwLock<Option<Arc<dyn ProgressSink>>> = RwLock::new(None);

/// Installs (or clears, with `None`) the process-global progress sink.
pub fn set_progress_sink(sink: Option<Arc<dyn ProgressSink>>) {
    *SINK.write().expect("progress sink lock poisoned") = sink;
}

/// The currently installed progress sink, if any.
pub fn progress_sink() -> Option<Arc<dyn ProgressSink>> {
    SINK.read().expect("progress sink lock poisoned").clone()
}

/// Per-campaign progress state: lock-free counters bumped by worker
/// threads, throttled emission to a [`ProgressSink`].
pub struct ProgressTracker {
    sink: Arc<dyn ProgressSink>,
    label: String,
    total: u64,
    start: Instant,
    done: AtomicU64,
    outcome_labels: Vec<&'static str>,
    outcome_counts: Vec<AtomicU64>,
    last_emit: Mutex<Instant>,
    finished: AtomicBool,
}

impl ProgressTracker {
    /// A tracker reporting to `sink`. `outcome_labels` fixes the
    /// index space used by [`ProgressTracker::trial_done`] (the
    /// campaign passes its canonical outcome order).
    pub fn new(
        sink: Arc<dyn ProgressSink>,
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Self {
        let start = Instant::now();
        let outcome_counts = outcome_labels.iter().map(|_| AtomicU64::new(0)).collect();
        ProgressTracker {
            sink,
            label: label.into(),
            total,
            start,
            done: AtomicU64::new(0),
            outcome_labels,
            outcome_counts,
            last_emit: Mutex::new(start),
            finished: AtomicBool::new(false),
        }
    }

    /// A tracker bound to the global sink, or `None` when no sink is
    /// installed (the common case — zero overhead for the campaign).
    pub fn for_registered(
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Option<Self> {
        progress_sink().map(|sink| ProgressTracker::new(sink, label, total, outcome_labels))
    }

    /// Records one completed trial with the given outcome index and
    /// emits a throttled update. Safe to call from any worker thread.
    pub fn trial_done(&self, outcome_index: usize) {
        if let Some(c) = self.outcome_counts.get(outcome_index) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        // The trial that completes the run emits unconditionally —
        // the final (done == total) update must never be swallowed by
        // the throttle window.
        if self.total > 0 && done >= self.total {
            self.emit_final(done);
            return;
        }
        // Throttle: only the thread that wins the try_lock may emit,
        // and only if the interval has passed. Contended or too-soon
        // updates are dropped — the final update always lands.
        if let Ok(mut last) = self.last_emit.try_lock() {
            let now = Instant::now();
            if now.duration_since(*last).as_millis() as u64 >= EMIT_INTERVAL_MS {
                *last = now;
                drop(last);
                self.sink.emit(&self.snapshot(done, false));
            }
        }
    }

    /// Emits the final update (always, regardless of throttle). A
    /// no-op when the completing [`ProgressTracker::trial_done`] call
    /// already emitted it — the finished line appears exactly once.
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.emit_final(done);
    }

    fn emit_final(&self, done: u64) {
        if !self.finished.swap(true, Ordering::SeqCst) {
            self.sink.emit(&self.snapshot(done, true));
            // The finished line is the one update worth waiting
            // (boundedly) for: the process may exit right after.
            self.sink.flush();
        }
    }

    fn snapshot(&self, done: u64, finished: bool) -> ProgressUpdate {
        let elapsed_secs = self.start.elapsed().as_secs_f64();
        let trials_per_sec = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        let eta_secs = if finished || trials_per_sec <= 0.0 {
            0.0
        } else {
            (self.total.saturating_sub(done)) as f64 / trials_per_sec
        };
        let outcomes = self
            .outcome_labels
            .iter()
            .zip(&self.outcome_counts)
            .filter_map(|(label, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((*label, n))
            })
            .collect();
        ProgressUpdate {
            label: self.label.clone(),
            done,
            total: self.total,
            elapsed_secs,
            trials_per_sec,
            eta_secs,
            outcomes,
            finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct RecordingSink {
        updates: Mutex<Vec<ProgressUpdate>>,
    }

    impl ProgressSink for RecordingSink {
        fn emit(&self, update: &ProgressUpdate) {
            self.updates.lock().unwrap().push(update.clone());
        }
    }

    #[test]
    fn tracker_counts_outcomes_and_finishes() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "bench/tech", 4, vec!["masked", "failure"]);
        t.trial_done(0);
        t.trial_done(1);
        t.trial_done(0);
        t.trial_done(0);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().expect("finish always emits");
        assert!(last.finished);
        assert_eq!(last.done, 4);
        assert_eq!(last.total, 4);
        assert_eq!(last.outcomes, vec![("masked", 3), ("failure", 1)]);
        assert_eq!(last.label, "bench/tech");
    }

    #[test]
    fn out_of_range_outcome_index_is_ignored() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "b", 1, vec!["masked"]);
        t.trial_done(99);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().unwrap();
        assert_eq!(last.done, 1);
        assert!(last.outcomes.is_empty());
    }

    #[test]
    fn final_update_emits_inside_throttle_window() {
        let sink = Arc::new(RecordingSink::default());
        // All trials complete well inside EMIT_INTERVAL_MS, so every
        // intermediate update is throttled — but the (done == total)
        // update must land even without finish().
        let t = ProgressTracker::new(sink.clone(), "b", 3, vec!["masked"]);
        t.trial_done(0);
        t.trial_done(0);
        t.trial_done(0);
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().expect("completing trial must emit");
        assert_eq!(last.done, 3);
        assert!(last.finished);
    }

    #[test]
    fn finished_update_emits_exactly_once() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "b", 2, vec!["masked"]);
        t.trial_done(0);
        t.trial_done(0);
        t.finish();
        t.finish();
        let updates = sink.updates.lock().unwrap();
        assert_eq!(updates.iter().filter(|u| u.finished).count(), 1);
    }

    /// `Write` handle into a shared buffer, for capturing sink output.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_stays_line_parseable_under_interleaved_labels() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink: Arc<JsonlSink> =
            Arc::new(JsonlSink::with_writer(Box::new(SharedBuf(buf.clone()))));
        let trackers: Vec<_> = (0..4)
            .map(|i| {
                Arc::new(ProgressTracker::new(
                    sink.clone(),
                    format!("bench-{i}/dup-val"),
                    50,
                    vec!["masked", "failure"],
                ))
            })
            .collect();
        let handles: Vec<_> = trackers
            .into_iter()
            .map(|t| {
                std::thread::spawn(move || {
                    for n in 0..50 {
                        t.trial_done(n % 2);
                    }
                    t.finish();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Emission is asynchronous; drain the writer thread before
        // inspecting the buffer.
        sink.flush();
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8 output");
        let lines: Vec<_> = text.lines().collect();
        assert!(lines.len() >= 4, "each tracker emits at least its final");
        for line in lines {
            let v = crate::json::JsonValue::parse(line).expect("every line is one JSON object");
            assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("progress"));
        }
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let u = ProgressUpdate {
            label: "a\"b".to_string(),
            done: 2,
            total: 10,
            elapsed_secs: 1.0,
            trials_per_sec: 2.0,
            eta_secs: 4.0,
            outcomes: vec![("masked", 2)],
            finished: false,
        };
        let line = u.to_jsonl();
        assert!(line.starts_with("{\"type\":\"progress\""));
        assert!(line.contains("\"label\":\"a\\\"b\""));
        assert!(line.contains("\"done\":2"));
        assert!(line.contains("\"outcomes\":{\"masked\":2}"));
        assert!(line.ends_with("\"finished\":false}"));
        let text = u.to_text();
        assert!(text.contains("2/10 trials"));
        assert!(text.contains("masked 2"));
    }

    /// `Write` handle that blocks while the test holds the gate — a
    /// wedged consumer (full pipe, hung terminal).
    struct WedgedWriter {
        gate: Arc<Mutex<()>>,
        out: Arc<Mutex<Vec<u8>>>,
    }

    impl Write for WedgedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let _blocked = self.gate.lock().unwrap();
            self.out.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn wedged_sink_drops_with_counter_instead_of_stalling() {
        let gate = Arc::new(Mutex::new(()));
        let out = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::with_writer(Box::new(WedgedWriter {
            gate: gate.clone(),
            out: out.clone(),
        }));
        // Wedge the writer for the whole emission burst.
        let hold = gate.lock().unwrap();
        let update = ProgressUpdate {
            label: "b/t".to_string(),
            done: 1,
            total: 100,
            elapsed_secs: 0.1,
            trials_per_sec: 10.0,
            eta_secs: 9.9,
            outcomes: vec![("masked", 1)],
            finished: false,
        };
        // 10k emits against a writer that cannot make progress. The
        // regression being guarded: `emit` used to perform the write
        // inline under a lock, so a wedged writer stalled the trial
        // loop indefinitely. Reaching the asserts at all — instead of
        // hanging until the test harness times out — is the proof;
        // everything past the bounded queue must land in `dropped`.
        let emits: u64 = 10_000;
        for _ in 0..emits {
            sink.emit(&update);
        }
        let dropped = sink.dropped();
        assert!(
            dropped >= emits - SINK_QUEUE_LINES as u64 - 1,
            "expected ~{} drops, got {dropped}",
            emits - SINK_QUEUE_LINES as u64
        );
        assert!(dropped < emits, "the queue should absorb some lines");
        // A flush against a wedged writer must give up, not hang.
        assert!(!sink.w.flush(Duration::from_millis(50)));
        // Unwedge: queued (non-dropped) lines drain and flush succeeds.
        drop(hold);
        assert!(sink.w.flush(FLUSH_TIMEOUT));
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines = text.lines().count() as u64;
        assert_eq!(lines + dropped, emits, "every emit is written or counted");
    }

    #[test]
    fn global_sink_registry_set_get_clear() {
        // Only this test touches the process-global sink.
        let sink = Arc::new(RecordingSink::default());
        set_progress_sink(Some(sink.clone()));
        let t = ProgressTracker::for_registered("x", 1, vec!["masked"]).expect("sink installed");
        t.trial_done(0);
        t.finish();
        set_progress_sink(None);
        assert!(progress_sink().is_none());
        assert!(!sink.updates.lock().unwrap().is_empty());
    }
}
