//! Streaming campaign progress.
//!
//! A campaign that runs thousands of trials across worker threads is
//! silent until it returns. This module gives it a heartbeat: the
//! campaign driver feeds per-trial completions into a
//! [`ProgressTracker`], which throttles them into periodic
//! [`ProgressUpdate`] snapshots and hands those to a [`ProgressSink`]
//! — human text on stderr ([`TextSink`]) or machine-readable JSONL
//! ([`JsonlSink`]), selected by `repro --progress text|jsonl`.
//!
//! Progress is pure observation: it reads atomic counters the campaign
//! already maintains and never feeds anything back, so enabling a sink
//! cannot perturb campaign results (see DESIGN.md, "Observability
//! invariants"). The sink registry is process-global so the campaign
//! crate does not need a config plumbing change for every caller.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Minimum milliseconds between emitted updates (final update always
/// emits).
const EMIT_INTERVAL_MS: u64 = 250;

/// One snapshot of campaign progress, as handed to a [`ProgressSink`].
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressUpdate {
    /// What is running, e.g. `"segm/dup-val"`.
    pub label: String,
    /// Trials completed so far.
    pub done: u64,
    /// Total trials planned.
    pub total: u64,
    /// Wall seconds since the tracker was created.
    pub elapsed_secs: f64,
    /// Completion rate (0 until the first trial lands).
    pub trials_per_sec: f64,
    /// Estimated seconds remaining (0 when done or rate unknown).
    pub eta_secs: f64,
    /// Nonzero outcome counts, in the caller's canonical outcome order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// True only for the final update.
    pub finished: bool,
}

impl ProgressUpdate {
    /// Renders a one-line human-readable form.
    pub fn to_text(&self) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.done as f64 / self.total as f64
        };
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let tail = if self.finished {
            format!("done in {:.1}s", self.elapsed_secs)
        } else {
            format!("ETA {:.0}s", self.eta_secs)
        };
        format!(
            "[{}] {}/{} trials ({:.1}%) | {:.1} trials/s | {} | {}",
            self.label, self.done, self.total, pct, self.trials_per_sec, tail, mix
        )
    }

    /// Renders a single JSONL record (hand-rolled: the schema is flat
    /// and fixed, and labels contain no characters needing escapes
    /// beyond `"` and `\`, which we escape anyway).
    pub fn to_jsonl(&self) -> String {
        let mix = self
            .outcomes
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"type\":\"progress\",\"label\":\"{}\",\"done\":{},\"total\":{},",
                "\"elapsed_secs\":{:.3},\"trials_per_sec\":{:.3},\"eta_secs\":{:.3},",
                "\"outcomes\":{{{}}},\"finished\":{}}}"
            ),
            escape_json(&self.label),
            self.done,
            self.total,
            self.elapsed_secs,
            self.trials_per_sec,
            self.eta_secs,
            mix,
            self.finished
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receives throttled progress snapshots. Implementations must be
/// cheap and must not panic: they run on campaign worker threads.
pub trait ProgressSink: Send + Sync {
    /// Consumes one snapshot.
    fn emit(&self, update: &ProgressUpdate);
}

/// Serializes one rendered line to a shared writer as a *single*
/// `write_all` under a lock, so concurrent trackers (interleaved
/// labels) can never shear a line. Both stock sinks are this plus a
/// renderer.
fn emit_line(out: &Mutex<Box<dyn Write + Send>>, mut line: String) {
    line.push('\n');
    // A poisoned lock just means another emitter panicked mid-write;
    // progress output is best-effort, keep going.
    let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = out.write_all(line.as_bytes());
    let _ = out.flush();
}

/// Human-readable one-line-per-update sink (stderr by default).
pub struct TextSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl Default for TextSink {
    fn default() -> Self {
        TextSink::new()
    }
}

impl TextSink {
    /// A sink writing to stderr.
    pub fn new() -> Self {
        TextSink::with_writer(Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests, files).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        TextSink {
            out: Mutex::new(out),
        }
    }
}

impl ProgressSink for TextSink {
    fn emit(&self, update: &ProgressUpdate) {
        emit_line(&self.out, update.to_text());
    }
}

/// Machine-readable JSONL sink (stderr by default; stdout stays clean
/// for exhibit output). Each update is exactly one parseable JSON
/// object per line, even under interleaved labels.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl Default for JsonlSink {
    fn default() -> Self {
        JsonlSink::new()
    }
}

impl JsonlSink {
    /// A sink writing to stderr.
    pub fn new() -> Self {
        JsonlSink::with_writer(Box::new(std::io::stderr()))
    }

    /// A sink writing to an arbitrary writer (tests, files).
    pub fn with_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }
}

impl ProgressSink for JsonlSink {
    fn emit(&self, update: &ProgressUpdate) {
        emit_line(&self.out, update.to_jsonl());
    }
}

static SINK: RwLock<Option<Arc<dyn ProgressSink>>> = RwLock::new(None);

/// Installs (or clears, with `None`) the process-global progress sink.
pub fn set_progress_sink(sink: Option<Arc<dyn ProgressSink>>) {
    *SINK.write().expect("progress sink lock poisoned") = sink;
}

/// The currently installed progress sink, if any.
pub fn progress_sink() -> Option<Arc<dyn ProgressSink>> {
    SINK.read().expect("progress sink lock poisoned").clone()
}

/// Per-campaign progress state: lock-free counters bumped by worker
/// threads, throttled emission to a [`ProgressSink`].
pub struct ProgressTracker {
    sink: Arc<dyn ProgressSink>,
    label: String,
    total: u64,
    start: Instant,
    done: AtomicU64,
    outcome_labels: Vec<&'static str>,
    outcome_counts: Vec<AtomicU64>,
    last_emit: Mutex<Instant>,
    finished: AtomicBool,
}

impl ProgressTracker {
    /// A tracker reporting to `sink`. `outcome_labels` fixes the
    /// index space used by [`ProgressTracker::trial_done`] (the
    /// campaign passes its canonical outcome order).
    pub fn new(
        sink: Arc<dyn ProgressSink>,
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Self {
        let start = Instant::now();
        let outcome_counts = outcome_labels.iter().map(|_| AtomicU64::new(0)).collect();
        ProgressTracker {
            sink,
            label: label.into(),
            total,
            start,
            done: AtomicU64::new(0),
            outcome_labels,
            outcome_counts,
            last_emit: Mutex::new(start),
            finished: AtomicBool::new(false),
        }
    }

    /// A tracker bound to the global sink, or `None` when no sink is
    /// installed (the common case — zero overhead for the campaign).
    pub fn for_registered(
        label: impl Into<String>,
        total: u64,
        outcome_labels: Vec<&'static str>,
    ) -> Option<Self> {
        progress_sink().map(|sink| ProgressTracker::new(sink, label, total, outcome_labels))
    }

    /// Records one completed trial with the given outcome index and
    /// emits a throttled update. Safe to call from any worker thread.
    pub fn trial_done(&self, outcome_index: usize) {
        if let Some(c) = self.outcome_counts.get(outcome_index) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        // The trial that completes the run emits unconditionally —
        // the final (done == total) update must never be swallowed by
        // the throttle window.
        if self.total > 0 && done >= self.total {
            self.emit_final(done);
            return;
        }
        // Throttle: only the thread that wins the try_lock may emit,
        // and only if the interval has passed. Contended or too-soon
        // updates are dropped — the final update always lands.
        if let Ok(mut last) = self.last_emit.try_lock() {
            let now = Instant::now();
            if now.duration_since(*last).as_millis() as u64 >= EMIT_INTERVAL_MS {
                *last = now;
                drop(last);
                self.sink.emit(&self.snapshot(done, false));
            }
        }
    }

    /// Emits the final update (always, regardless of throttle). A
    /// no-op when the completing [`ProgressTracker::trial_done`] call
    /// already emitted it — the finished line appears exactly once.
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.emit_final(done);
    }

    fn emit_final(&self, done: u64) {
        if !self.finished.swap(true, Ordering::SeqCst) {
            self.sink.emit(&self.snapshot(done, true));
        }
    }

    fn snapshot(&self, done: u64, finished: bool) -> ProgressUpdate {
        let elapsed_secs = self.start.elapsed().as_secs_f64();
        let trials_per_sec = if elapsed_secs > 0.0 {
            done as f64 / elapsed_secs
        } else {
            0.0
        };
        let eta_secs = if finished || trials_per_sec <= 0.0 {
            0.0
        } else {
            (self.total.saturating_sub(done)) as f64 / trials_per_sec
        };
        let outcomes = self
            .outcome_labels
            .iter()
            .zip(&self.outcome_counts)
            .filter_map(|(label, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((*label, n))
            })
            .collect();
        ProgressUpdate {
            label: self.label.clone(),
            done,
            total: self.total,
            elapsed_secs,
            trials_per_sec,
            eta_secs,
            outcomes,
            finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct RecordingSink {
        updates: Mutex<Vec<ProgressUpdate>>,
    }

    impl ProgressSink for RecordingSink {
        fn emit(&self, update: &ProgressUpdate) {
            self.updates.lock().unwrap().push(update.clone());
        }
    }

    #[test]
    fn tracker_counts_outcomes_and_finishes() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "bench/tech", 4, vec!["masked", "failure"]);
        t.trial_done(0);
        t.trial_done(1);
        t.trial_done(0);
        t.trial_done(0);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().expect("finish always emits");
        assert!(last.finished);
        assert_eq!(last.done, 4);
        assert_eq!(last.total, 4);
        assert_eq!(last.outcomes, vec![("masked", 3), ("failure", 1)]);
        assert_eq!(last.label, "bench/tech");
    }

    #[test]
    fn out_of_range_outcome_index_is_ignored() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "b", 1, vec!["masked"]);
        t.trial_done(99);
        t.finish();
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().unwrap();
        assert_eq!(last.done, 1);
        assert!(last.outcomes.is_empty());
    }

    #[test]
    fn final_update_emits_inside_throttle_window() {
        let sink = Arc::new(RecordingSink::default());
        // All trials complete well inside EMIT_INTERVAL_MS, so every
        // intermediate update is throttled — but the (done == total)
        // update must land even without finish().
        let t = ProgressTracker::new(sink.clone(), "b", 3, vec!["masked"]);
        t.trial_done(0);
        t.trial_done(0);
        t.trial_done(0);
        let updates = sink.updates.lock().unwrap();
        let last = updates.last().expect("completing trial must emit");
        assert_eq!(last.done, 3);
        assert!(last.finished);
    }

    #[test]
    fn finished_update_emits_exactly_once() {
        let sink = Arc::new(RecordingSink::default());
        let t = ProgressTracker::new(sink.clone(), "b", 2, vec!["masked"]);
        t.trial_done(0);
        t.trial_done(0);
        t.finish();
        t.finish();
        let updates = sink.updates.lock().unwrap();
        assert_eq!(updates.iter().filter(|u| u.finished).count(), 1);
    }

    /// `Write` handle into a shared buffer, for capturing sink output.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_stays_line_parseable_under_interleaved_labels() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink: Arc<dyn ProgressSink> =
            Arc::new(JsonlSink::with_writer(Box::new(SharedBuf(buf.clone()))));
        let trackers: Vec<_> = (0..4)
            .map(|i| {
                Arc::new(ProgressTracker::new(
                    sink.clone(),
                    format!("bench-{i}/dup-val"),
                    50,
                    vec!["masked", "failure"],
                ))
            })
            .collect();
        let handles: Vec<_> = trackers
            .into_iter()
            .map(|t| {
                std::thread::spawn(move || {
                    for n in 0..50 {
                        t.trial_done(n % 2);
                    }
                    t.finish();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8 output");
        let lines: Vec<_> = text.lines().collect();
        assert!(lines.len() >= 4, "each tracker emits at least its final");
        for line in lines {
            let v = crate::json::JsonValue::parse(line).expect("every line is one JSON object");
            assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("progress"));
        }
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let u = ProgressUpdate {
            label: "a\"b".to_string(),
            done: 2,
            total: 10,
            elapsed_secs: 1.0,
            trials_per_sec: 2.0,
            eta_secs: 4.0,
            outcomes: vec![("masked", 2)],
            finished: false,
        };
        let line = u.to_jsonl();
        assert!(line.starts_with("{\"type\":\"progress\""));
        assert!(line.contains("\"label\":\"a\\\"b\""));
        assert!(line.contains("\"done\":2"));
        assert!(line.contains("\"outcomes\":{\"masked\":2}"));
        assert!(line.ends_with("\"finished\":false}"));
        let text = u.to_text();
        assert!(text.contains("2/10 trials"));
        assert!(text.contains("masked 2"));
    }

    #[test]
    fn global_sink_registry_set_get_clear() {
        // Only this test touches the process-global sink.
        let sink = Arc::new(RecordingSink::default());
        set_progress_sink(Some(sink.clone()));
        let t = ProgressTracker::for_registered("x", 1, vec!["masked"]).expect("sink installed");
        t.trial_done(0);
        t.finish();
        set_progress_sink(None);
        assert!(progress_sink().is_none());
        assert!(!sink.updates.lock().unwrap().is_empty());
    }
}
