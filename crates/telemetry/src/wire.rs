//! Length-prefixed JSONL framing: `"{:08x} {json}\n"`.
//!
//! One codec shared by every frame-shaped byte stream in the
//! workspace — the run store's shard files ([`crate::runstore`]) and
//! the fleet's coordinator/worker and observatory sockets — so both
//! ends agree on torn-frame detection. A frame is eight lowercase hex
//! digits of the JSON byte length, a space, the JSON text, and a
//! newline. The length prefix makes a partial write detectable without
//! trusting newline placement.
//!
//! A reader distinguishes two stop conditions:
//!
//! * [`FrameStep::Incomplete`] — the bytes end mid-frame. On disk this
//!   is a torn tail a writer may truncate; on a socket it just means
//!   "read more".
//! * [`FrameStep::Malformed`] — the bytes at the cursor are not this
//!   codec's framing at all. On disk it is treated like a torn tail
//!   (the store stops trusting the file there); on a socket it is a
//!   peer protocol error.

/// Encodes one frame: 8 hex digits of JSON byte length, space, JSON,
/// newline.
pub fn encode_frame(json: &str) -> String {
    format!("{:08x} {}\n", json.len(), json)
}

/// One step of frame scanning (see module docs for the distinction
/// between the two non-frame outcomes).
pub enum FrameStep<'a> {
    /// A complete frame: the body text plus the total encoded length
    /// (header + body + newline) to advance the cursor by.
    Frame {
        /// The JSON body (without header or trailing newline).
        body: &'a str,
        /// Total encoded byte length of this frame.
        len: usize,
    },
    /// The bytes end mid-frame; more input may complete it.
    Incomplete,
    /// The bytes at the cursor are not valid framing.
    Malformed,
}

/// Scans one frame from the front of `bytes`.
pub fn scan_frame(bytes: &[u8]) -> FrameStep<'_> {
    if bytes.len() < 10 {
        return FrameStep::Incomplete;
    }
    if bytes[8] != b' ' {
        return FrameStep::Malformed;
    }
    let Ok(hex) = std::str::from_utf8(&bytes[..8]) else {
        return FrameStep::Malformed;
    };
    let Ok(len) = usize::from_str_radix(hex, 16) else {
        return FrameStep::Malformed;
    };
    let Some(end) = 9usize.checked_add(len) else {
        return FrameStep::Malformed;
    };
    if bytes.len() < end + 1 {
        return FrameStep::Incomplete;
    }
    if bytes[end] != b'\n' {
        return FrameStep::Malformed;
    }
    match std::str::from_utf8(&bytes[9..end]) {
        Ok(body) => FrameStep::Frame { body, len: end + 1 },
        Err(_) => FrameStep::Malformed,
    }
}

/// Incremental frame decoder for a byte stream (socket reads land in
/// arbitrary chunk sizes). Push bytes in, pop complete frame bodies
/// out; a malformed header is an error because a live peer — unlike a
/// crashed writer's file tail — has no business emitting one.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    off: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact consumed prefix before growing, so a long-lived
        // connection doesn't accrete every frame it ever relayed.
        if self.off > 0 && self.off >= self.buf.len() / 2 {
            self.buf.drain(..self.off);
            self.off = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, `Ok(None)` when more bytes
    /// are needed, or `InvalidData` on a malformed header.
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        match scan_frame(&self.buf[self.off..]) {
            FrameStep::Frame { body, len } => {
                let body = body.to_string();
                self.off += len;
                Ok(Some(body))
            }
            FrameStep::Incomplete => Ok(None),
            FrameStep::Malformed => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed wire frame",
            )),
        }
    }
}

/// Writes one frame to a stream (no flush; callers batch or flush per
/// their latency needs).
pub fn write_frame(w: &mut impl std::io::Write, json: &str) -> std::io::Result<()> {
    w.write_all(encode_frame(json).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let framed = encode_frame("{\"a\": 1}");
        match scan_frame(framed.as_bytes()) {
            FrameStep::Frame { body, len } => {
                assert_eq!(body, "{\"a\": 1}");
                assert_eq!(len, framed.len());
            }
            _ => panic!("expected a complete frame"),
        }
    }

    #[test]
    fn incomplete_and_malformed_are_distinguished() {
        let framed = encode_frame("{}");
        assert!(matches!(
            scan_frame(&framed.as_bytes()[..5]),
            FrameStep::Incomplete
        ));
        assert!(matches!(
            scan_frame(&framed.as_bytes()[..framed.len() - 1]),
            FrameStep::Incomplete
        ));
        assert!(matches!(
            scan_frame(b"nothexdig {}\n"),
            FrameStep::Malformed
        ));
        assert!(matches!(scan_frame(b"00000002-{}\n"), FrameStep::Malformed));
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let mut dec = FrameDecoder::new();
        let stream = format!(
            "{}{}",
            encode_frame("{\"x\": 1}"),
            encode_frame("{\"y\": 2}")
        );
        let (head, tail) = stream.as_bytes().split_at(stream.len() / 2);
        dec.push(head);
        let first = dec.next_frame().unwrap();
        dec.push(tail);
        let mut got: Vec<String> = first.into_iter().collect();
        while let Some(body) = dec.next_frame().unwrap() {
            got.push(body);
        }
        assert_eq!(got, vec!["{\"x\": 1}", "{\"y\": 2}"]);
    }

    #[test]
    fn decoder_rejects_garbage() {
        let mut dec = FrameDecoder::new();
        dec.push(b"garbage garbage garbage");
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut dec = FrameDecoder::new();
        for i in 0..1000 {
            dec.push(encode_frame(&format!("{{\"i\": {i}}}")).as_bytes());
            assert!(dec.next_frame().unwrap().is_some());
        }
        assert!(dec.buf.len() < 4096, "consumed frames were not compacted");
    }
}
