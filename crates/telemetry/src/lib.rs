#![warn(missing_docs)]

//! # softft-telemetry
//!
//! Observability for the soft-ft stack: where `softft-campaign` answers
//! *how many* faults each technique catches, this crate answers *which*
//! mechanism caught *which* fault and *how fast* — the per-detector
//! cost/benefit attribution needed to configure software detectors.
//!
//! Four pieces:
//!
//! * [`metrics`] — a dependency-free metrics core: counters, gauges, and
//!   log-bucketed histograms collected in a [`MetricsRegistry`] that
//!   serializes to JSON (hand-rolled; no serde in the hot path);
//! * [`trace`] — [`TraceObserver`], an implementation of the VM
//!   [`Observer`](softft_vm::Observer) trait recording per-opcode dynamic
//!   instruction counts, per-[`CheckKind`](softft_ir::CheckKind) check
//!   firings, and *detection latency*: the dynamic-instruction distance
//!   between the fault-plan injection point and the first failing check;
//! * [`events`] — the per-trial JSONL event schema ([`TrialEvent`]) and
//!   the per-campaign [`RunManifest`], both serde round-trippable;
//! * [`log`] — minimal leveled stderr logging for the `repro` binary
//!   (`-v` / `-q`).
//!
//! The observer is generic plumbing: campaigns that pass
//! [`NoopObserver`](softft_vm::NoopObserver) monomorphize to the exact
//! pre-telemetry loop, so the disabled path stays zero-cost.

pub mod events;
pub mod log;
pub mod metrics;
pub mod trace;

pub use events::{RunManifest, TrialEvent, TRIAL_SCHEMA_VERSION};
pub use log::{Logger, Verbosity};
pub use metrics::{Counter, Gauge, Histogram, Metric, MetricsRegistry};
pub use trace::{check_kind_label, CheckCounter, CheckKindCounts, TraceObserver, CHECK_KINDS};
