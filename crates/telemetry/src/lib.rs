#![warn(missing_docs)]

//! # softft-telemetry
//!
//! Observability for the soft-ft stack: where `softft-campaign` answers
//! *how many* faults each technique catches, this crate answers *which*
//! mechanism caught *which* fault and *how fast* — the per-detector
//! cost/benefit attribution needed to configure software detectors.
//!
//! Eight pieces:
//!
//! * [`metrics`] — a dependency-free metrics core: counters, gauges, and
//!   log-bucketed histograms collected in a [`MetricsRegistry`] that
//!   serializes to JSON (hand-rolled; no serde in the hot path);
//! * [`trace`] — [`TraceObserver`], an implementation of the VM
//!   [`Observer`](softft_vm::Observer) trait recording per-opcode dynamic
//!   instruction counts, per-[`CheckKind`](softft_ir::CheckKind) check
//!   firings, and *detection latency*: the dynamic-instruction distance
//!   between the fault-plan injection point and the first failing check;
//! * [`events`] — the per-trial JSONL event schema ([`TrialEvent`]) and
//!   the per-campaign [`RunManifest`], both serde round-trippable;
//! * [`spans`] — lightweight monotonic wall-time spans ([`SpanSet`])
//!   feeding the metrics registry; used for campaign phase attribution;
//! * [`runstore`] — append-only, crash-safe run persistence: a
//!   manifest plus length-prefixed JSONL shard files with monotonic
//!   per-trial sequence numbers and torn-tail recovery, the substrate
//!   for interrupt/resume campaigns and the live observatory;
//! * [`wire`] — the length-prefixed JSONL frame codec shared by the
//!   run store's shard files and the fleet's coordinator/worker and
//!   observatory sockets (torn-tail vs protocol-error semantics);
//! * [`progress`] — streaming campaign progress: a [`ProgressSink`]
//!   (human text or machine JSONL on stderr) fed throttled trial-level
//!   updates by a [`ProgressTracker`];
//! * [`log`] — minimal leveled stderr logging for the `repro` binary
//!   (`-v` / `-q`).
//!
//! The observer is generic plumbing: campaigns that pass
//! [`NoopObserver`](softft_vm::NoopObserver) monomorphize to the exact
//! pre-telemetry loop, so the disabled path stays zero-cost.

pub mod events;
pub mod json;
pub mod log;
pub mod metrics;
pub mod progress;
pub mod runstore;
pub mod spans;
pub mod trace;
pub mod wire;

pub use events::{RunManifest, TrialEvent, TRIAL_SCHEMA_VERSION};
pub use json::JsonValue;
pub use log::{Logger, Verbosity};
pub use metrics::{Counter, Gauge, Histogram, Metric, MetricsRegistry};
pub use progress::{
    progress_sink, set_progress_sink, JsonlSink, ProgressSink, ProgressTracker, ProgressUpdate,
    TextSink,
};
pub use runstore::{
    shard_file_name, shard_file_name_worker, RunStore, ShardMeta, ShardTail, ShardWriter,
    StoreManifest, StoredTrial, RUNSTORE_SCHEMA_VERSION,
};
pub use spans::{SpanSet, Stopwatch};
pub use trace::{
    check_kind_from_label, check_kind_label, CheckCounter, CheckKindCounts, TraceObserver,
    CHECK_KINDS,
};
