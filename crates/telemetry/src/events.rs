//! On-disk telemetry schema: one [`TrialEvent`] per JSONL line plus a
//! [`RunManifest`] per campaign.
//!
//! Fields are plain strings/numbers rather than campaign enums so the
//! schema is self-describing for external tooling and does not tie this crate
//! to `softft-campaign` (which depends on *us*). Labels come from
//! [`crate::trace::check_kind_label`] and the campaign's canonical
//! outcome labels.

use serde::{Deserialize, Serialize};

/// Version stamp written into every [`RunManifest`]; bump on any
/// backwards-incompatible change to [`TrialEvent`] or the manifest.
pub const TRIAL_SCHEMA_VERSION: u32 = 1;

/// One fault-injection trial, as one line of a `.trials.jsonl` file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrialEvent {
    /// Trial index within the campaign (0-based, in plan order).
    pub trial: u32,
    /// Planned injection point (dynamic instruction index).
    pub at_dyn: u64,
    /// Per-trial seed derived from the campaign master seed.
    pub fault_seed: u64,
    /// Whether the trigger was reached and a fault actually injected.
    pub injected: bool,
    /// Flipped bit position, when a register fault was injected.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub bit: Option<u32>,
    /// Outcome class label (see `Outcome::label` in `softft-campaign`).
    pub outcome: String,
    /// Label of the check kind that detected the fault, for software
    /// detections (see [`crate::trace::check_kind_label`]).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub detected_by: Option<String>,
    /// Dynamic instructions from injection to detection, for detected
    /// trials.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub detect_latency: Option<u64>,
    /// Dynamic instructions the run executed before completing or
    /// trapping.
    pub dyn_insts: u64,
    /// Fidelity score vs. the golden output, for completed runs whose
    /// output differed.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub fidelity: Option<f64>,
    /// Victim function id, for injected trials in attributed campaigns.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub victim_func: Option<u64>,
    /// Defining static instruction id of the victim slot, for injected
    /// register faults whose victim is an instruction result.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub victim_inst: Option<u64>,
    /// Opcode mnemonic of the defining instruction, or the `param` /
    /// `branch` pseudo-opcodes.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub victim_op: Option<String>,
    /// Bit band of the flip (`lo` / `hi` / `full`).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub bit_band: Option<String>,
    /// Protection class of the victim site (`duplicated` /
    /// `value-checked` / `unprotected` / `control-flow`), when the
    /// campaign was given the transform's protection map.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub protection: Option<String>,
}

impl TrialEvent {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Parses one JSONL line.
    pub fn from_jsonl(line: &str) -> serde_json::Result<TrialEvent> {
        serde_json::from_str(line)
    }
}

/// Campaign-level metadata, written once per campaign as
/// `.manifest.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version of the trial events this manifest accompanies
    /// ([`TRIAL_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Benchmark name.
    pub benchmark: String,
    /// Protection technique label.
    pub technique: String,
    /// Fault model ("register" or "branch-target").
    pub fault_kind: String,
    /// Number of trials.
    pub trials: u32,
    /// Master seed the per-trial plans were derived from.
    pub master_seed: u64,
    /// Worker threads used (does not affect results).
    pub threads: usize,
    /// Dynamic instructions of the fault-free run.
    pub golden_dyn_insts: u64,
    /// Wall-clock milliseconds the campaign took.
    pub wall_ms: u64,
}

impl RunManifest {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a manifest.
    pub fn from_json(s: &str) -> serde_json::Result<RunManifest> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> TrialEvent {
        TrialEvent {
            trial: 7,
            at_dyn: 12345,
            fault_seed: 0xDEAD_BEEF,
            injected: true,
            bit: Some(17),
            outcome: "swdetect.dup-mismatch".to_string(),
            detected_by: Some("dup-mismatch".to_string()),
            detect_latency: Some(42),
            dyn_insts: 99999,
            fidelity: None,
            victim_func: Some(0),
            victim_inst: Some(12),
            victim_op: Some("add".to_string()),
            bit_band: Some("lo".to_string()),
            protection: Some("duplicated".to_string()),
        }
    }

    #[test]
    fn trial_event_round_trips() {
        let e = event();
        let line = e.to_jsonl().unwrap();
        assert!(!line.contains('\n'), "one event = one line");
        assert_eq!(TrialEvent::from_jsonl(&line).unwrap(), e);
    }

    #[test]
    fn absent_options_are_omitted() {
        let e = TrialEvent {
            bit: None,
            detected_by: None,
            detect_latency: None,
            fidelity: None,
            victim_func: None,
            victim_inst: None,
            victim_op: None,
            bit_band: None,
            protection: None,
            outcome: "masked".to_string(),
            ..event()
        };
        let line = e.to_jsonl().unwrap();
        assert!(!line.contains("detected_by"), "{line}");
        assert!(!line.contains("detect_latency"), "{line}");
        assert!(!line.contains("fidelity"), "{line}");
        assert!(!line.contains("victim_"), "{line}");
        assert!(!line.contains("protection"), "{line}");
        assert_eq!(TrialEvent::from_jsonl(&line).unwrap(), e);

        // Pre-attribution lines (schema v1 without the victim fields)
        // still parse: the new fields default to absent.
        let old = r#"{"trial":1,"at_dyn":5,"fault_seed":9,"injected":false,"outcome":"masked","dyn_insts":100}"#;
        let parsed = TrialEvent::from_jsonl(old).unwrap();
        assert_eq!(parsed.victim_op, None);
        assert_eq!(parsed.protection, None);
    }

    #[test]
    fn manifest_round_trips() {
        let m = RunManifest {
            schema_version: TRIAL_SCHEMA_VERSION,
            benchmark: "tiff2bw".to_string(),
            technique: "DupVal".to_string(),
            fault_kind: "register".to_string(),
            trials: 200,
            master_seed: 0x5EED,
            threads: 4,
            golden_dyn_insts: 1_234_567,
            wall_ms: 890,
        };
        let j = m.to_json().unwrap();
        assert_eq!(RunManifest::from_json(&j).unwrap(), m);
    }

    #[test]
    fn jsonl_multi_line_round_trip() {
        let events: Vec<TrialEvent> = (0..5)
            .map(|i| TrialEvent {
                trial: i,
                detect_latency: if i % 2 == 0 {
                    Some(i as u64 * 10)
                } else {
                    None
                },
                ..event()
            })
            .collect();
        let file: String = events
            .iter()
            .map(|e| e.to_jsonl().unwrap() + "\n")
            .collect();
        let back: Vec<TrialEvent> = file
            .lines()
            .map(|l| TrialEvent::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(back, events);
    }
}
