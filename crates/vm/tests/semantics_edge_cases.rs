//! Edge-case semantics tests for the interpreter: unsigned arithmetic,
//! shift masking, narrow-type wrapping, float conversions, and the
//! canonical sign-extended representation.

use softft_ir::dsl::FunctionDsl;
use softft_ir::inst::IntCC;
use softft_ir::{Module, Type};
use softft_vm::interp::{NoopObserver, Vm, VmConfig};
use softft_vm::{RunEnd, TrapKind};

fn run1(build: impl FnOnce(&mut FunctionDsl)) -> Result<i64, TrapKind> {
    let mut m = Module::new("t");
    let f = FunctionDsl::build("main", &[], Some(Type::I64), build);
    m.add_function(f);
    let main = m.function_by_name("main").unwrap();
    let r = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
    match r.end {
        RunEnd::Completed { ret } => Ok(ret.unwrap() as i64),
        RunEnd::Trap { kind, .. } => Err(kind),
    }
}

#[test]
fn unsigned_division_uses_bit_pattern() {
    // -1 as u64 is huge; udiv by 2 gives 2^63 - 1.
    let got = run1(|d| {
        let a = d.i64c(-1);
        let b = d.i64c(2);
        let q = d.udiv(a, b);
        d.ret(Some(q));
    })
    .unwrap();
    assert_eq!(got, i64::MAX);
}

#[test]
fn unsigned_remainder_of_narrow_types() {
    // 0xFF as unsigned i8 is 255; urem 16 = 15.
    let got = run1(|d| {
        let a = d.iconst(Type::I8, -1);
        let b = d.iconst(Type::I8, 16);
        let r = d.urem(a, b);
        let w = d.sext(r, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    assert_eq!(got, 15);
}

#[test]
fn udiv_by_zero_traps() {
    let err = run1(|d| {
        let a = d.i64c(5);
        let b = d.i64c(0);
        let q = d.udiv(a, b);
        d.ret(Some(q));
    })
    .unwrap_err();
    assert_eq!(err, TrapKind::DivByZero);
}

#[test]
fn sdiv_min_by_minus_one_wraps_not_panics() {
    let got = run1(|d| {
        let a = d.i64c(i64::MIN);
        let b = d.i64c(-1);
        let q = d.sdiv(a, b);
        d.ret(Some(q));
    })
    .unwrap();
    assert_eq!(got, i64::MIN); // wrapping division semantics
}

#[test]
fn shift_amounts_wrap_to_type_width() {
    // Shift by 68 on i64 behaves as shift by 4.
    let got = run1(|d| {
        let a = d.i64c(1);
        let s = d.i64c(68);
        let v = d.shl(a, s);
        d.ret(Some(v));
    })
    .unwrap();
    assert_eq!(got, 16);
    // Shift by 9 on i8 behaves as shift by 1.
    let got = run1(|d| {
        let a = d.iconst(Type::I8, 3);
        let s = d.iconst(Type::I8, 9);
        let v = d.shl(a, s);
        let w = d.sext(v, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    assert_eq!(got, 6);
}

#[test]
fn lshr_on_negative_narrow_value_zero_fills_at_width() {
    // i16 -1 (0xFFFF) lshr 4 = 0x0FFF, not sign-filled.
    let got = run1(|d| {
        let a = d.iconst(Type::I16, -1);
        let s = d.iconst(Type::I16, 4);
        let v = d.lshr(a, s);
        let w = d.sext(v, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    assert_eq!(got, 0x0FFF);
}

#[test]
fn unsigned_compares_respect_width() {
    // As unsigned i8: 0x80 (=-128 signed) > 0x7F.
    let got = run1(|d| {
        let a = d.iconst(Type::I8, -128);
        let b = d.iconst(Type::I8, 127);
        let c = d.icmp(IntCC::Ugt, a, b);
        let one = d.i64c(1);
        let zero = d.i64c(0);
        let v = d.select(c, one, zero);
        d.ret(Some(v));
    })
    .unwrap();
    assert_eq!(got, 1);
}

#[test]
fn fptosi_saturates_at_extremes() {
    let got = run1(|d| {
        let big = d.fconst(1e300);
        let v = d.fptosi(big, Type::I64);
        d.ret(Some(v));
    })
    .unwrap();
    assert_eq!(got, i64::MAX);
    let got = run1(|d| {
        let nan = d.fconst(f64::NAN);
        let v = d.fptosi(nan, Type::I64);
        d.ret(Some(v));
    })
    .unwrap();
    assert_eq!(got, 0); // Rust `as` semantics: NaN -> 0
}

#[test]
fn fptosi_to_narrow_type_canonicalizes() {
    let got = run1(|d| {
        let v = d.fconst(1000.0);
        let n = d.fptosi(v, Type::I8); // 1000 truncated into i8
        let w = d.sext(n, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    // Canonical i8 of the low bits of 1000 (0x3E8 -> 0xE8 -> -24).
    assert_eq!(got, (1000i64 << 56 >> 56));
}

#[test]
fn zext_uses_unsigned_bits() {
    let got = run1(|d| {
        let a = d.iconst(Type::I8, -1); // 0xFF
        let w = d.zext(a, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    assert_eq!(got, 255);
}

#[test]
fn trunc_then_sext_roundtrips_low_bits() {
    let got = run1(|d| {
        let a = d.i64c(0x1234_5678_9ABC_DEF0u64 as i64);
        let t = d.trunc(a, Type::I16);
        let w = d.sext(t, Type::I64);
        d.ret(Some(w));
    })
    .unwrap();
    assert_eq!(got, 0xDEF0u16 as i16 as i64);
}

#[test]
fn float_compares_are_ordered() {
    // NaN compares false under every ordered predicate, including Ne.
    use softft_ir::inst::FloatCC;
    for (pred, expect) in [
        (FloatCC::Eq, 0),
        (FloatCC::Ne, 1), // Rust `!=` on NaN is true; we mirror host semantics
        (FloatCC::Lt, 0),
        (FloatCC::Ge, 0),
    ] {
        let got = run1(move |d| {
            let nan = d.fconst(f64::NAN);
            let one = d.fconst(1.0);
            let c = d.fcmp(pred, nan, one);
            let t = d.i64c(1);
            let z = d.i64c(0);
            let v = d.select(c, t, z);
            d.ret(Some(v));
        })
        .unwrap();
        assert_eq!(got, expect, "{pred:?}");
    }
}

#[test]
fn srem_sign_follows_dividend() {
    let got = run1(|d| {
        let a = d.i64c(-7);
        let b = d.i64c(3);
        let r = d.srem(a, b);
        d.ret(Some(r));
    })
    .unwrap();
    assert_eq!(got, -1);
}
