//! Single-bit-flip fault injection.
//!
//! The paper injects one bit flip into a randomly selected register of the
//! physical register file at a random cycle (statistical fault injection).
//! Our machine's "register file" is the set of live SSA value slots of the
//! active frame, so a [`FaultPlan`] names a dynamic instruction index at
//! which one randomly chosen defined slot gets one randomly chosen bit
//! flipped (within the value's type width, re-canonicalizing the
//! sign-extended representation afterwards).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use softft_ir::{FuncId, Type, ValueId};

/// What kind of hardware state a fault corrupts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A register-file bit flip (the paper's primary fault model).
    #[default]
    Register,
    /// A corrupted branch target: the first branch executed at or after
    /// the trigger jumps to a random block of the current function. The
    /// paper notes its scheme does *not* cover these and defers to
    /// signature-based control-flow checking — which we implement in
    /// `softft::cfcss`.
    BranchTarget,
}

/// A planned injection: *when* (dynamic instruction index) and a seed that
/// determines *where* (victim slot and bit) once the trigger is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Dynamic instruction index at which to inject (before executing
    /// that instruction).
    pub at_dyn: u64,
    /// Seed for victim/bit selection.
    pub seed: u64,
    /// What the fault corrupts.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A register-file bit-flip plan (the default fault model).
    pub fn register(at_dyn: u64, seed: u64) -> Self {
        FaultPlan {
            at_dyn,
            seed,
            kind: FaultKind::Register,
        }
    }

    /// A branch-target corruption plan.
    pub fn branch_target(at_dyn: u64, seed: u64) -> Self {
        FaultPlan {
            at_dyn,
            seed,
            kind: FaultKind::BranchTarget,
        }
    }
}

/// What an injection actually did (for post-hoc analysis, e.g. the paper's
/// "large vs small value change" split in Fig. 2).
///
/// For [`FaultKind::BranchTarget`] injections the register fields are
/// repurposed: `old_bits`/`new_bits` hold the intended and corrupted
/// block indices, and `value`/`ty`/`bit` are unused.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Dynamic instruction index of the injection.
    pub at_dyn: u64,
    /// Function whose frame was targeted.
    pub func: FuncId,
    /// Victim SSA value slot.
    pub value: ValueId,
    /// The value's type.
    pub ty: Type,
    /// Flipped bit position (within the type's width).
    pub bit: u32,
    /// Canonical bits before the flip.
    pub old_bits: u64,
    /// Canonical bits after the flip.
    pub new_bits: u64,
}

impl InjectionRecord {
    /// Relative magnitude of the value change caused by the flip, used to
    /// split unacceptable SDCs into "large" and "small" value changes
    /// (Fig. 2). For integers this is `|new - old| / (|old| + 1)`; for
    /// floats the analogous expression on the decoded values (NaN/inf
    /// results count as infinitely large).
    pub fn relative_change(&self) -> f64 {
        if self.ty.is_float() {
            let old = f64::from_bits(self.old_bits);
            let new = f64::from_bits(self.new_bits);
            if !new.is_finite() || !old.is_finite() {
                return f64::INFINITY;
            }
            (new - old).abs() / (old.abs() + 1.0)
        } else {
            let old = self.old_bits as i64 as f64;
            let new = self.new_bits as i64 as f64;
            (new - old).abs() / (old.abs() + 1.0)
        }
    }
}

/// Deterministic victim/bit chooser built from a [`FaultPlan`] seed.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates the chooser for `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
        }
    }

    /// Picks a victim among `candidates` (indices of defined slots) and a
    /// bit within `ty_bits`; returns `None` when no slot is defined yet.
    pub fn choose(&mut self, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..candidates.len());
        Some(candidates[i])
    }

    /// Picks the bit to flip for a value of type `ty`.
    pub fn choose_bit(&mut self, ty: Type) -> u32 {
        self.rng.gen_range(0..ty.bits())
    }

    /// Picks the landing block for a branch-target fault.
    pub fn choose_block(&mut self, num_blocks: usize) -> usize {
        self.rng.gen_range(0..num_blocks.max(1))
    }
}

/// Flips `bit` in the canonical representation of a value of type `ty`,
/// returning the re-canonicalized bits.
pub fn flip_bit(bits: u64, ty: Type, bit: u32) -> u64 {
    debug_assert!(bit < ty.bits());
    let flipped = bits ^ (1u64 << bit);
    if ty.is_float() {
        flipped
    } else {
        ty.sign_extend(flipped) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_recanonicalizes_narrow_ints() {
        // 0x7F (127) with bit 7 flipped becomes 0xFF = -1 for i8.
        let out = flip_bit(127, Type::I8, 7);
        assert_eq!(out as i64, -1);
        // Flipping it back restores the original.
        assert_eq!(flip_bit(out, Type::I8, 7) as i64, 127);
    }

    #[test]
    fn flip_bit_zero_toggles_parity() {
        assert_eq!(flip_bit(0, Type::I64, 0), 1);
        assert_eq!(flip_bit(1, Type::I1, 0), 0);
    }

    #[test]
    fn float_flip_is_raw_bits() {
        let one = 1.0f64.to_bits();
        let flipped = flip_bit(one, Type::F64, 63);
        assert_eq!(f64::from_bits(flipped), -1.0);
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::register(3, 42);
        let cands = vec![2, 5, 9];
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        assert_eq!(a.choose(&cands), b.choose(&cands));
        assert_eq!(a.choose_bit(Type::I32), b.choose_bit(Type::I32));
        assert!(a.choose(&[]).is_none());
    }

    #[test]
    fn relative_change_magnitudes() {
        let rec = InjectionRecord {
            at_dyn: 0,
            func: FuncId::new(0),
            value: ValueId::new(0),
            ty: Type::I32,
            bit: 30,
            old_bits: 1,
            new_bits: (1i64 + (1 << 30)) as u64,
        };
        assert!(rec.relative_change() > 1e8);

        let small = InjectionRecord {
            old_bits: 100,
            new_bits: 101,
            bit: 0,
            ..rec
        };
        assert!(small.relative_change() < 0.02);

        let f = InjectionRecord {
            ty: Type::F64,
            old_bits: 1.0f64.to_bits(),
            new_bits: f64::INFINITY.to_bits(),
            ..rec
        };
        assert_eq!(f.relative_change(), f64::INFINITY);
    }
}
