//! Single-bit-flip fault injection.
//!
//! The paper injects one bit flip into a randomly selected register of the
//! physical register file at a random cycle (statistical fault injection).
//! Our machine's "register file" is the set of live SSA value slots of the
//! active frame, so a [`FaultPlan`] names a dynamic instruction index at
//! which one randomly chosen defined slot gets one randomly chosen bit
//! flipped (within the value's type width, re-canonicalizing the
//! sign-extended representation afterwards).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use softft_ir::{BlockId, FuncId, InstId, Type, ValueId};

/// What kind of hardware state a fault corrupts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A register-file bit flip (the paper's primary fault model).
    #[default]
    Register,
    /// A corrupted branch target: the first branch executed at or after
    /// the trigger jumps to a random block of the current function. The
    /// paper notes its scheme does *not* cover these and defers to
    /// signature-based control-flow checking — which we implement in
    /// `softft::cfcss`.
    BranchTarget,
}

/// A planned injection: *when* (dynamic instruction index) and a seed that
/// determines *where* (victim slot and bit) once the trigger is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Dynamic instruction index at which to inject (before executing
    /// that instruction).
    pub at_dyn: u64,
    /// Seed for victim/bit selection.
    pub seed: u64,
    /// What the fault corrupts.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A register-file bit-flip plan (the default fault model).
    pub fn register(at_dyn: u64, seed: u64) -> Self {
        FaultPlan {
            at_dyn,
            seed,
            kind: FaultKind::Register,
        }
    }

    /// A branch-target corruption plan.
    pub fn branch_target(at_dyn: u64, seed: u64) -> Self {
        FaultPlan {
            at_dyn,
            seed,
            kind: FaultKind::BranchTarget,
        }
    }
}

/// What an injection actually did (for post-hoc analysis, e.g. the paper's
/// "large vs small value change" split in Fig. 2 and per-site coverage
/// attribution).
///
/// The record stays flat for serde stability, but the register fields
/// (`value`/`ty`/`bit`/`old_bits`/`new_bits`) are only meaningful when
/// `kind` is [`FaultKind::Register`]; for [`FaultKind::BranchTarget`]
/// injections `old_bits`/`new_bits` carry the intended and corrupted
/// block indices. Use the typed views [`InjectionRecord::register_fault`]
/// and [`InjectionRecord::branch_fault`] instead of reading the raw
/// fields so the payloads cannot be misattributed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Dynamic instruction index of the injection.
    pub at_dyn: u64,
    /// Function whose frame was targeted.
    pub func: FuncId,
    /// What the fault corrupted (register bits or a branch target).
    /// Defaults to `Register` when absent so pre-existing serialized
    /// records still parse.
    #[serde(default)]
    pub kind: FaultKind,
    /// Victim SSA value slot (register faults only).
    pub value: ValueId,
    /// The value's type (register faults only).
    pub ty: Type,
    /// Flipped bit position within the type's width (register faults
    /// only).
    pub bit: u32,
    /// Canonical bits before the flip (register faults; the intended
    /// successor block index for branch faults).
    pub old_bits: u64,
    /// Canonical bits after the flip (register faults; the corrupted
    /// landing block index for branch faults).
    pub new_bits: u64,
    /// Static instruction defining the victim slot, for register faults
    /// whose victim is an instruction result (`None` for parameter slots
    /// and branch faults). This is the fault *site* coverage maps
    /// aggregate on.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub def_inst: Option<InstId>,
}

/// Typed view of a register bit-flip injection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegisterFault {
    /// Victim SSA value slot.
    pub value: ValueId,
    /// The value's type.
    pub ty: Type,
    /// Flipped bit position.
    pub bit: u32,
    /// Canonical bits before the flip.
    pub old_bits: u64,
    /// Canonical bits after the flip.
    pub new_bits: u64,
    /// Static instruction defining the victim slot, when it is an
    /// instruction result.
    pub def_inst: Option<InstId>,
}

/// Typed view of a branch-target corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchFault {
    /// The successor the branch should have taken.
    pub intended: BlockId,
    /// The random block it landed on instead.
    pub landed: BlockId,
}

impl InjectionRecord {
    /// Builds a register bit-flip record.
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        at_dyn: u64,
        func: FuncId,
        value: ValueId,
        ty: Type,
        bit: u32,
        old_bits: u64,
        new_bits: u64,
        def_inst: Option<InstId>,
    ) -> Self {
        InjectionRecord {
            at_dyn,
            func,
            kind: FaultKind::Register,
            value,
            ty,
            bit,
            old_bits,
            new_bits,
            def_inst,
        }
    }

    /// Builds a branch-target corruption record.
    pub fn branch(at_dyn: u64, func: FuncId, intended: BlockId, landed: BlockId) -> Self {
        InjectionRecord {
            at_dyn,
            func,
            kind: FaultKind::BranchTarget,
            value: ValueId::new(0),
            ty: Type::I64,
            bit: 0,
            old_bits: intended.index() as u64,
            new_bits: landed.index() as u64,
            def_inst: None,
        }
    }

    /// The register payload, when this records a register bit flip.
    pub fn register_fault(&self) -> Option<RegisterFault> {
        match self.kind {
            FaultKind::Register => Some(RegisterFault {
                value: self.value,
                ty: self.ty,
                bit: self.bit,
                old_bits: self.old_bits,
                new_bits: self.new_bits,
                def_inst: self.def_inst,
            }),
            FaultKind::BranchTarget => None,
        }
    }

    /// The branch payload, when this records a corrupted branch target.
    pub fn branch_fault(&self) -> Option<BranchFault> {
        match self.kind {
            FaultKind::BranchTarget => Some(BranchFault {
                intended: BlockId::new(self.old_bits as usize),
                landed: BlockId::new(self.new_bits as usize),
            }),
            FaultKind::Register => None,
        }
    }

    /// Relative magnitude of the value change caused by the flip, used to
    /// split unacceptable SDCs into "large" and "small" value changes
    /// (Fig. 2). For integers this is `|new - old| / (|old| + 1)`; for
    /// floats the analogous expression on the decoded values (NaN/inf
    /// results count as infinitely large). Branch-target corruptions have
    /// no victim value, so their change magnitude is 0.
    pub fn relative_change(&self) -> f64 {
        if self.kind == FaultKind::BranchTarget {
            return 0.0;
        }
        if self.ty.is_float() {
            let old = f64::from_bits(self.old_bits);
            let new = f64::from_bits(self.new_bits);
            if !new.is_finite() || !old.is_finite() {
                return f64::INFINITY;
            }
            (new - old).abs() / (old.abs() + 1.0)
        } else {
            let old = self.old_bits as i64 as f64;
            let new = self.new_bits as i64 as f64;
            (new - old).abs() / (old.abs() + 1.0)
        }
    }
}

/// Deterministic victim/bit chooser built from a [`FaultPlan`] seed.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    /// Creates the chooser for `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(plan.seed),
        }
    }

    /// Picks a victim among `candidates` (indices of defined slots) and a
    /// bit within `ty_bits`; returns `None` when no slot is defined yet.
    pub fn choose(&mut self, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..candidates.len());
        Some(candidates[i])
    }

    /// Picks the bit to flip for a value of type `ty`.
    pub fn choose_bit(&mut self, ty: Type) -> u32 {
        self.rng.gen_range(0..ty.bits())
    }

    /// Picks the landing block for a branch-target fault.
    pub fn choose_block(&mut self, num_blocks: usize) -> usize {
        self.rng.gen_range(0..num_blocks.max(1))
    }
}

/// Flips `bit` in the canonical representation of a value of type `ty`,
/// returning the re-canonicalized bits.
pub fn flip_bit(bits: u64, ty: Type, bit: u32) -> u64 {
    debug_assert!(bit < ty.bits());
    let flipped = bits ^ (1u64 << bit);
    if ty.is_float() {
        flipped
    } else {
        ty.sign_extend(flipped) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_recanonicalizes_narrow_ints() {
        // 0x7F (127) with bit 7 flipped becomes 0xFF = -1 for i8.
        let out = flip_bit(127, Type::I8, 7);
        assert_eq!(out as i64, -1);
        // Flipping it back restores the original.
        assert_eq!(flip_bit(out, Type::I8, 7) as i64, 127);
    }

    #[test]
    fn flip_bit_zero_toggles_parity() {
        assert_eq!(flip_bit(0, Type::I64, 0), 1);
        assert_eq!(flip_bit(1, Type::I1, 0), 0);
    }

    #[test]
    fn float_flip_is_raw_bits() {
        let one = 1.0f64.to_bits();
        let flipped = flip_bit(one, Type::F64, 63);
        assert_eq!(f64::from_bits(flipped), -1.0);
    }

    #[test]
    fn injector_is_deterministic() {
        let plan = FaultPlan::register(3, 42);
        let cands = vec![2, 5, 9];
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        assert_eq!(a.choose(&cands), b.choose(&cands));
        assert_eq!(a.choose_bit(Type::I32), b.choose_bit(Type::I32));
        assert!(a.choose(&[]).is_none());
    }

    #[test]
    fn relative_change_magnitudes() {
        let rec = InjectionRecord::register(
            0,
            FuncId::new(0),
            ValueId::new(0),
            Type::I32,
            30,
            1,
            (1i64 + (1 << 30)) as u64,
            None,
        );
        assert!(rec.relative_change() > 1e8);

        let small = InjectionRecord {
            old_bits: 100,
            new_bits: 101,
            bit: 0,
            ..rec
        };
        assert!(small.relative_change() < 0.02);

        let f = InjectionRecord {
            ty: Type::F64,
            old_bits: 1.0f64.to_bits(),
            new_bits: f64::INFINITY.to_bits(),
            ..rec
        };
        assert_eq!(f.relative_change(), f64::INFINITY);
    }

    #[test]
    fn typed_views_match_kind() {
        let reg = InjectionRecord::register(
            5,
            FuncId::new(1),
            ValueId::new(3),
            Type::I32,
            7,
            10,
            138,
            Some(InstId::new(9)),
        );
        let rf = reg.register_fault().expect("register view");
        assert_eq!(rf.value, ValueId::new(3));
        assert_eq!(rf.def_inst, Some(InstId::new(9)));
        assert!(reg.branch_fault().is_none());

        let br = InjectionRecord::branch(8, FuncId::new(0), BlockId::new(2), BlockId::new(5));
        let bf = br.branch_fault().expect("branch view");
        assert_eq!(bf.intended, BlockId::new(2));
        assert_eq!(bf.landed, BlockId::new(5));
        assert!(br.register_fault().is_none());
        assert_eq!(br.relative_change(), 0.0);
    }

    #[test]
    fn serde_accepts_pre_branch_kind_records() {
        // Round trip first: the current schema is self-consistent.
        let rec = InjectionRecord::register(
            5,
            FuncId::new(1),
            ValueId::new(3),
            Type::I32,
            7,
            10,
            138,
            Some(InstId::new(9)),
        );
        let json = serde_json::to_string(&rec).unwrap();
        assert_eq!(serde_json::from_str::<InjectionRecord>(&json).unwrap(), rec);
        let br = InjectionRecord::branch(9, FuncId::new(0), BlockId::new(2), BlockId::new(5));
        let json = serde_json::to_string(&br).unwrap();
        assert_eq!(serde_json::from_str::<InjectionRecord>(&json).unwrap(), br);

        // Records written before `kind`/`def_inst` existed carry neither
        // field; both must default (Register kind, no def site).
        let old = InjectionRecord::register(
            5,
            FuncId::new(1),
            ValueId::new(3),
            Type::I32,
            7,
            10,
            138,
            None,
        );
        let json = serde_json::to_string(&old).unwrap();
        assert!(!json.contains("def_inst"), "{json}");
        let legacy = json.replace("\"kind\":\"Register\",", "");
        assert_ne!(legacy, json, "kind field must have been present");
        let parsed: InjectionRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(parsed, old);
        assert_eq!(parsed.kind, FaultKind::Register);
    }
}
