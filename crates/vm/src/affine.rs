//! Static soundness check for *affine* spin proofs.
//!
//! Exact state recurrence ([`crate::interp::SpinCore`]) misses the most
//! common real spin: a corrupted loop *bound* (e.g. a trip-count register
//! hit by a high-bit flip) leaves the loop body re-executing on a fixed
//! point — memory and every non-counter slot recur each iteration — while
//! the induction counters march linearly toward a bound they will never
//! reach before the watchdog. The full state then never recurs, but it
//! recurs *modulo an affine shift* of a few top-frame slots.
//!
//! The dynamic side (the drift candidate in `SpinCore`) establishes that
//! between three boundaries `t`, `t+p`, `t+2p` the machine state was
//! identical except for a small set of top-frame slots that advanced by
//! exactly `delta` then `2*delta`. That alone does not prove a spin: a
//! terminating countdown looks identical until it crosses its exit bound.
//! This module supplies the missing static argument over the (transformed)
//! IR of the spinning function:
//!
//! 1. **Closed counter chains.** Every drifting value is defined by a
//!    phi or an add/sub-with-constant whose inputs are themselves drifting
//!    values with the *same* per-period delta (or constants, for phi
//!    inits). The chain's step constants all move in the delta's
//!    direction, so counter values evolve monotonically between the
//!    extrapolated endpoints.
//! 2. **No escapes.** Drifting values are consumed only by their own
//!    chain and by integer comparisons. A drifting value feeding a store,
//!    load address, call, select, cast, or any other computation could
//!    leak the (extrapolated, hence unknowable) counter into observable
//!    state — any such use rejects the proof.
//! 3. **Non-crossing comparisons.** Each comparison either relates two
//!    drifting values with equal deltas (shift-invariant: duplicated
//!    counter chains under DupOnly/DupVal/FullDup compare dup against
//!    original) or a drifting value against a *loop-invariant* bound — an
//!    IR constant, a function parameter, or an entry-block definition,
//!    whose slot cannot change while the frame is live. For the bound
//!    case the counter's whole extrapolated range over `periods + 2`
//!    periods must stay strictly on the observed side of the bound: a
//!    countdown that *will* reach its exit value fails exactly this
//!    margin and keeps executing (sound fallback).
//!
//! Together with the dynamic evidence this proves every future period
//! repeats the observed branch decisions, so memory, outputs, the
//! check-failure counter, and the trap (watchdog at the bound) are all
//! bitwise equal to a full run's — only the final values of the counter
//! slots themselves differ, and frames are unobservable in results,
//! records, and telemetry.

use softft_ir::function::{Function, ValueKind};
use softft_ir::inst::{BinOp, IntCC, Op, Term};
use softft_ir::types::{Const, Type};
use softft_ir::ValueId;

/// Maximum drifting slots a candidate may carry; matches the compare-side
/// cap so candidates and validation agree on "a few counters".
pub(crate) const MAX_DRIFT_SLOTS: usize = 8;

/// Integer hull `[lo, hi]` in `i128` (no wrap at i64 width by checks).
#[derive(Clone, Copy)]
struct Hull {
    lo: i128,
    hi: i128,
}

impl Hull {
    fn include(&mut self, v: i128) {
        self.lo = self.lo.min(v);
        self.hi = self.hi.max(v);
    }
}

/// Per-period delta of value `v`, if it is in the drift set.
fn delta_of(drifts: &[(usize, i64)], v: ValueId) -> Option<i64> {
    drifts
        .iter()
        .find(|&&(i, _)| i == v.index())
        .map(|&(_, d)| d)
}

/// Signed value of an interned integer constant, if `v` is one.
fn const_int(func: &Function, v: ValueId) -> Option<i64> {
    match func.value(v).kind {
        ValueKind::Const(Const::Int(c, _)) => Some(c),
        _ => None,
    }
}

/// A loop-invariant comparison bound: an IR constant, a parameter, or an
/// entry-block definition. Slots of such values are written at most once,
/// before the loop is entered, so their anchor value holds for the whole
/// extrapolation. Returns the bound's signed value.
fn invariant_bound(func: &Function, slots: &[Option<u64>], v: ValueId) -> Option<i128> {
    match func.value(v).kind {
        ValueKind::Const(Const::Int(c, _)) => Some(c as i128),
        ValueKind::Const(_) => None,
        ValueKind::Param(_) => slots.get(v.index())?.map(|b| b as i64 as i128),
        ValueKind::Inst(i) => {
            let inst = func.inst(i);
            if inst.dead || inst.block != func.entry() {
                return None;
            }
            slots.get(v.index())?.map(|b| b as i64 as i128)
        }
    }
}

/// True when `pred`'s outcome is the same for every first operand in
/// `range` against the fixed second operand `b`.
fn stable_outcome(pred: IntCC, range: Hull, b: i128) -> bool {
    let (lo, hi) = (range.lo, range.hi);
    match pred {
        IntCC::Eq | IntCC::Ne => b < lo || b > hi,
        IntCC::Slt => hi < b || lo >= b,
        IntCC::Sle => hi <= b || lo > b,
        IntCC::Sgt => lo > b || hi <= b,
        IntCC::Sge => lo >= b || hi < b,
        // Unsigned orders agree with signed ones on the non-negative
        // half; drifting counters with negative excursions are rejected.
        IntCC::Ult => lo >= 0 && b >= 0 && (hi < b || lo >= b),
        IntCC::Ule => lo >= 0 && b >= 0 && (hi <= b || lo > b),
        IntCC::Ugt => lo >= 0 && b >= 0 && (lo > b || hi <= b),
        IntCC::Uge => lo >= 0 && b >= 0 && (lo >= b || hi < b),
    }
}

/// Validates an affine drift candidate against the function's IR.
///
/// `slots` is the anchor top frame's slot array (one per SSA value),
/// `drifts` the observed `(value index, per-period delta)` set, and
/// `periods` the number of whole periods the proof extrapolates over
/// (the caller passes `cycles + 2` for margin). Returns `true` only if
/// the drift set is a closed, escape-free counter chain whose every
/// comparison is provably stable for that long.
pub(crate) fn affine_spin_sound(
    func: &Function,
    slots: &[Option<u64>],
    drifts: &[(usize, i64)],
    periods: u64,
) -> bool {
    if drifts.is_empty() || drifts.len() > MAX_DRIFT_SLOTS || periods == 0 {
        return false;
    }
    let dir = drifts[0].1.signum();
    if dir == 0 {
        return false;
    }
    let periods = periods as i128;

    // Hull of every value any drifting slot can take during the
    // extrapolation: anchor values, extrapolated endpoints, and constant
    // phi inits (should an init edge ever re-execute). Chain steps all
    // share the delta direction, so evolution between those endpoints is
    // monotone; one extra step of slack absorbs chain intermediates.
    let mut hull = Hull {
        lo: i128::MAX,
        hi: i128::MIN,
    };
    let mut max_step = 0i128;

    for &(idx, delta) in drifts {
        if delta == 0 || delta.signum() != dir || idx >= func.num_values() {
            return false;
        }
        let v = ValueId::new(idx);
        // Only full-width integer counters: narrower types could wrap
        // inside the extrapolated range, breaking linearity.
        if func.value(v).ty != Type::I64 {
            return false;
        }
        let Some(Some(bits)) = slots.get(idx) else {
            return false;
        };
        let v0 = *bits as i64 as i128;
        hull.include(v0);
        hull.include(v0 + delta as i128 * periods);

        // The defining instruction must be a chain member.
        let Some(def) = func.def_inst(v) else {
            return false; // params/consts cannot drift
        };
        let inst = func.inst(def);
        if inst.dead {
            return false;
        }
        match &inst.op {
            Op::Bin {
                op: op @ (BinOp::Add | BinOp::Sub),
                lhs,
                rhs,
            } => {
                // v = u ± c with u in the set at the same delta and the
                // step moving in the drift direction.
                let (u, c) = match (delta_of(drifts, *lhs), const_int(func, *rhs)) {
                    (Some(du), Some(c)) => (du, if *op == BinOp::Sub { -c } else { c }),
                    _ => match (const_int(func, *lhs), delta_of(drifts, *rhs)) {
                        (Some(c), Some(du)) if *op == BinOp::Add => (du, c),
                        _ => return false,
                    },
                };
                if u != delta || (c != 0 && (c as i128).signum() != dir as i128) {
                    return false;
                }
                max_step = max_step.max((c as i128).abs());
            }
            Op::Phi { incomings } => {
                for &(_, arg) in incomings {
                    match delta_of(drifts, arg) {
                        Some(da) if da == delta => {}
                        Some(_) => return false,
                        None => match const_int(func, arg) {
                            Some(c) => hull.include(c as i128),
                            None => return false,
                        },
                    }
                }
            }
            _ => return false,
        }
    }
    hull.lo -= max_step;
    hull.hi += max_step;
    if hull.lo < i64::MIN as i128 || hull.hi > i64::MAX as i128 {
        return false; // extrapolation would wrap at machine width
    }

    // Scan every live use of every drifting value: only its own chain
    // and provably stable comparisons may consume it.
    let mut operands = Vec::new();
    for b in func.block_ids() {
        let block = func.block(b);
        for &i in &block.insts {
            let inst = func.inst(i);
            if inst.dead {
                continue;
            }
            operands.clear();
            inst.op.operands(&mut operands);
            if !operands.iter().any(|&o| delta_of(drifts, o).is_some()) {
                continue;
            }
            match &inst.op {
                Op::Bin {
                    op: BinOp::Add | BinOp::Sub,
                    ..
                } => {
                    // Chain step: its result must itself be in the set
                    // (the def-side rules above then constrain it fully).
                    match inst.result {
                        Some(r) if delta_of(drifts, r).is_some() => {}
                        _ => return false,
                    }
                }
                Op::Phi { .. } => match inst.result {
                    Some(r) if delta_of(drifts, r).is_some() => {}
                    _ => return false,
                },
                Op::Icmp { pred, lhs, rhs } => {
                    match (delta_of(drifts, *lhs), delta_of(drifts, *rhs)) {
                        // Both drifting: outcome is shift-invariant only
                        // when the deltas cancel (dup vs original chain).
                        // Unsigned orders additionally need the hull to
                        // stay non-negative (a shared shift across zero
                        // reorders operands in the unsigned domain).
                        (Some(dl), Some(dr)) => {
                            let unsigned =
                                matches!(pred, IntCC::Ult | IntCC::Ule | IntCC::Ugt | IntCC::Uge);
                            if dl != dr || (unsigned && hull.lo < 0) {
                                return false;
                            }
                        }
                        (Some(_), None) => match invariant_bound(func, slots, *rhs) {
                            Some(b) if stable_outcome(*pred, hull, b) => {}
                            _ => return false,
                        },
                        (None, Some(_)) => {
                            // Mirror: bound on the left. Swap by flipping
                            // the predicate's direction.
                            let flipped = match pred {
                                IntCC::Eq => IntCC::Eq,
                                IntCC::Ne => IntCC::Ne,
                                IntCC::Slt => IntCC::Sgt,
                                IntCC::Sle => IntCC::Sge,
                                IntCC::Sgt => IntCC::Slt,
                                IntCC::Sge => IntCC::Sle,
                                IntCC::Ult => IntCC::Ugt,
                                IntCC::Ule => IntCC::Uge,
                                IntCC::Ugt => IntCC::Ult,
                                IntCC::Uge => IntCC::Ule,
                            };
                            match invariant_bound(func, slots, *lhs) {
                                Some(b) if stable_outcome(flipped, hull, b) => {}
                                _ => return false,
                            }
                        }
                        (None, None) => unreachable!("operand scan said drifting"),
                    }
                }
                // Stores, loads, calls, selects, casts, checks, float
                // ops, other arithmetic: the counter escapes — reject.
                _ => return false,
            }
        }
        // Terminator uses: a drifting value feeding a branch condition
        // or a return escapes (conditions are I1 icmp results, never the
        // I64 counters themselves, but reject defensively).
        match block.term.as_ref() {
            Some(Term::CondBr { cond, .. }) if delta_of(drifts, *cond).is_some() => return false,
            Some(Term::Ret(Some(v))) if delta_of(drifts, *v).is_some() => return false,
            _ => {}
        }
    }
    true
}
