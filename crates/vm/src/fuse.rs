//! The superinstruction (fused) execution tier.
//!
//! [`fuse_func`] builds a third engine image above [`DecodedFunc`]: a
//! per-block scan pairs hot adjacent instructions into single fused
//! [`FInst`]s, selected statically from a fusion table seeded by the
//! digram classes `VmProfiler::hot_digrams` reports on the paper's
//! benchmarks (the `icmp+check` signature of the value-duplication
//! transforms, ALU chains like `mul+add`/`sub+icmp`, `load+sext` pixel
//! reads, `icmp+select` clamps, and the `icmp+condbr` loop back-edge
//! test, which fuses into the terminator). Everything else lowers to a
//! *specialized single*: opcode, predicate and width pre-resolved into a
//! dense `u8` tag at fuse time, so the machine loop is one flat `match`
//! over [`FTag`] — the closest safe Rust gets to computed-goto — with no
//! nested per-operand re-resolution.
//!
//! **Fusion legality.** A pair may fuse only when its two instructions
//! retire back-to-back in the same block by fall-through: both
//! constituents come from one block's `code` range (never across a CFG
//! edge, where phi copies run, and never across a `call`, where the next
//! dispatch happens in the callee). `Digrams::fusible_top` is the
//! profiler-side view of exactly this rule.
//!
//! **Fault-site identity.** Fusion halves *dispatch*, not architecture:
//! a fused pair still reports both constituent dynamic-instruction
//! boundaries — each half runs the full boundary sequence (sink → fault
//! trigger → watchdog → count → observer → profiler) before it executes,
//! and the second half re-reads its operands *after* its boundary, so an
//! injection landing between the halves corrupts exactly the state the
//! decoded engine would see. Snapshots can therefore land mid-pair; the
//! fused loop realigns on resume by retiring the orphaned second half
//! through an unfused path. Results, traps, injection records, observer
//! streams, snapshots and profiles are bitwise identical to the decoded
//! and tree tiers (`tests/decoded_equiv.rs` gates this).

use crate::decode::{
    inject, take_edge, DFrame, DInst, DKind, DNoSink, DSink, DTerm, DecodedFunc, DecodedModule,
    SLOT_NONE,
};
use crate::fault::FaultPlan;
use crate::interp::{
    finish_converging, ConvergeOutcome, ExecState, MachineEnd, Observer, Snapshot, SuffixObserver,
    Vm,
};
use crate::memory::Memory;
use crate::outcome::{RunEnd, RunResult, TrapKind};
use crate::profile::OpClass;
use softft_ir::function::Function;
use softft_ir::inst::{BinOp, CastKind, FloatCC, IntCC, UnOp};
use softft_ir::{BlockId, FuncId, InstId, Module, Type};

/// Dense superinstruction tag. Single tags carry the opcode/predicate/
/// width pre-resolved (`x`/`y`/`ty` on the [`FInst`]); pair tags retire
/// two constituent instructions under one dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum FTag {
    // --- specialized singles -------------------------------------------
    /// 64-bit `add` (canonical form is identity — no masking).
    Add64,
    /// 64-bit `sub`.
    Sub64,
    /// 64-bit `mul`.
    Mul64,
    /// 64-bit `and`.
    And64,
    /// 64-bit `or`.
    Or64,
    /// 64-bit `xor`.
    Xor64,
    /// Narrow (< 64-bit) add/sub/mul/and/or/xor; `x` = ALU code, `ty` =
    /// operand type (canonicalization).
    AluN,
    /// shl/lshr/ashr; `x` = shift code, `y` = `64 - bits`, `ty` = type.
    Shift,
    /// sdiv/srem/udiv/urem; `x` = code, `y` = `64 - bits`, `ty` = type.
    DivRem,
    /// fadd/fsub/fmul/fdiv; `x` = code.
    FBin,
    /// fsqrt/fabs/ffloor/fneg; `x` = code.
    FUn,
    /// Integer compare; `x` = predicate code, `y` = `64 - bits`.
    Icmp,
    /// Float compare; `x` = predicate code.
    Fcmp,
    /// trunc; result type on the constituent `DInst`.
    Trunc,
    /// sext (canonical form is already extended: a copy).
    SExt,
    /// zext; `x` = `64 - source bits`.
    ZExt,
    /// fptosi; result type on the constituent `DInst`.
    FpToSi,
    /// sitofp.
    SiToFp,
    /// select; operands `a`(cond)/`b`(true)/`c`(false).
    Select,
    /// load; `a` = address, type on the constituent `DInst`.
    Load,
    /// store; `a` = address, `b` = value, `ty` = stored type.
    Store,
    /// check; `a` = condition (kind read cold off the `DInst` on fail).
    Check,
    /// call; `a` = args_start, `b` = args_len, `c` = callee index.
    Call,
    // --- fused pairs (two constituent boundaries, one dispatch) --------
    /// `icmp` + `check`: the value-duplication compare-and-check
    /// signature. `x`/`y` as [`FTag::Icmp`], `a`/`b` → `r1`; `c` = check
    /// condition (re-read after the second boundary).
    PIcmpCheck,
    /// ALU + ALU (any integer width): `x`/`y` = ALU codes, `a`,`b` →
    /// `r1` (canon via `ty`), `c`,`d` → `r2` (canon via `ty2`).
    PAluAlu,
    /// ALU + `icmp`: `x` = ALU code (canon via `ty`), `y` = predicate,
    /// `z` = the compare's `64 - bits`.
    PAluIcmp,
    /// ALU + `load`: `a`,`b` → `r1` (canon via `ty`); `c` = address →
    /// `r2` (`ty2` = loaded type).
    PAluLoad,
    /// `load` + `sext`: `a` = address → `r1`; `c` = cast source → `r2`
    /// (sign-extension of a canonical value is a copy).
    PLoadSExt,
    /// `sext` + ALU: `a` → `r1` (copy); `y` = ALU code, `c`,`d` → `r2`
    /// (canon via `ty2`).
    PSExtAlu,
    /// `icmp` + `select` on the compare's own result: `x`/`y` as
    /// [`FTag::Icmp`], `a`,`b` → `r1`; `c`/`d` = true/false values →
    /// `r2`. The select condition is `r1`, re-read after the second
    /// boundary.
    PIcmpSelect,
    /// `select` + ALU on the select's own result: `a`(cond)/`b`(true)/
    /// `c`(false) → `r1`; `x` = ALU code, `d` = the ALU's other operand,
    /// `z` = which side `r1` feeds (0 = lhs, 1 = rhs), canon via `ty2`.
    /// The select result is re-read through `r1` after the boundary.
    PSelectAlu,
    /// `load` + ALU: `a` = address → `r1` (`ty` = loaded type); `x` =
    /// ALU code, `c`,`d` → `r2` (canon via `ty2`).
    PLoadAlu,
    /// ALU + `store`: `a`,`b` → `r1` (canon via `ty`); `c` = address,
    /// `d` = stored value, `ty2` = stored type.
    PAluStore,
    /// `store` + ALU: `a` = address, `b` = value, `ty` = stored type;
    /// `x` = ALU code, `c`,`d` → `r2` (canon via `ty2`).
    PStoreAlu,
    /// Float binop + float binop: `x`/`y` = fbin codes, `a`,`b` → `r1`,
    /// `c`,`d` → `r2`.
    PFBinFBin,
    /// Float binop + ALU: `x` = fbin code, `a`,`b` → `r1`; `y` = ALU
    /// code, `c`,`d` → `r2` (canon via `ty2`).
    PFBinAlu,
    /// `load` + float binop: `a` = address → `r1` (`ty` = loaded type);
    /// `y` = fbin code, `c`,`d` → `r2`.
    PLoadFBin,
}

/// One superinstruction: a fixed-size cell of the fused stream.
///
/// Everything the machine loop needs — observer identity, result types,
/// profiler classes, canonicalization shifts — is embedded in the cell,
/// so the hot path never touches the decoded stream (the one exception
/// is the cold `check`-failure arm, which re-reads the constituent
/// `DInst` for its `CheckKind`). The cell carries no decoded pc: the
/// machine loop maintains `cur.pc` as the running first-constituent
/// index, which block-contiguous cell coverage makes exact.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FInst {
    pub(crate) tag: FTag,
    /// First per-tag immediate (ALU/shift/predicate code, zext shift).
    pub(crate) x: u8,
    /// Second per-tag immediate (`64 - bits` shift, second code).
    pub(crate) y: u8,
    /// First-half canon shift (`64 - bits`) for integer-op pairs, or the
    /// operand-side flag for `PSelectAlu`.
    pub(crate) z: u8,
    /// Second-half canon shift for integer-op pairs (`PAluIcmp`: the
    /// compare's width shift).
    pub(crate) w: u8,
    /// The first constituent's operand/result type (for binops the two
    /// coincide; for `store` this is the stored value type).
    pub(crate) ty: Type,
    /// The second constituent's result type (pairs only; for `PAluLoad`
    /// it is the loaded type).
    pub(crate) ty2: Type,
    /// Profiler classes of the constituents.
    pub(crate) cls1: OpClass,
    pub(crate) cls2: OpClass,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
    pub(crate) d: u32,
    /// First constituent's result slot (or [`SLOT_NONE`]).
    pub(crate) r1: u32,
    /// Second constituent's result slot (pairs only).
    pub(crate) r2: u32,
    /// Observer ids of the constituents.
    pub(crate) inst1: InstId,
    pub(crate) inst2: InstId,
}

/// A fused `icmp` + `condbr` terminator: the block's trailing compare
/// retires together with the branch, with both boundaries intact. The
/// compare is excluded from the block's [`FInst`] range.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FTermFuse {
    /// Predicate code and `64 - bits` of the compare.
    pub(crate) pred: u8,
    pub(crate) sh: u8,
    /// The compare's observer id, result type and profiler class.
    pub(crate) inst: InstId,
    pub(crate) rty: Type,
    pub(crate) cls: OpClass,
    pub(crate) a: u32,
    pub(crate) b: u32,
    /// The compare's result slot.
    pub(crate) r: u32,
    /// The branch condition slot (usually `r`, but not required —
    /// re-read after the terminator boundary).
    pub(crate) cond: u32,
    pub(crate) then_edge: u32,
    pub(crate) else_edge: u32,
}

/// One block's range of the fused stream.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FBlock {
    pub(crate) start: u32,
    pub(crate) end: u32,
    pub(crate) term_fuse: Option<FTermFuse>,
}

/// One function's superinstruction image, built over (and executed
/// against) its [`DecodedFunc`].
#[derive(Debug)]
pub(crate) struct FusedFunc {
    pub(crate) fcode: Vec<FInst>,
    pub(crate) fblocks: Vec<FBlock>,
    /// Decoded pc → fused index. Both halves of a pair map to the same
    /// cell; a terminator-fused compare maps to its block's `end` (it
    /// has no [`FInst`]).
    pub(crate) fmap: Vec<u32>,
}

// Per-tag immediate codes. The ALU/shift/divrem split mirrors how the
// decoded match factors `BinOp`; predicates keep `IntCC`/`FloatCC`
// declaration order.
fn alu_code(op: BinOp) -> Option<u8> {
    match op {
        BinOp::Add => Some(0),
        BinOp::Sub => Some(1),
        BinOp::Mul => Some(2),
        BinOp::And => Some(3),
        BinOp::Or => Some(4),
        BinOp::Xor => Some(5),
        _ => None,
    }
}

fn shift_code(op: BinOp) -> Option<u8> {
    match op {
        BinOp::Shl => Some(0),
        BinOp::LShr => Some(1),
        BinOp::AShr => Some(2),
        _ => None,
    }
}

fn divrem_code(op: BinOp) -> Option<u8> {
    match op {
        BinOp::SDiv => Some(0),
        BinOp::SRem => Some(1),
        BinOp::UDiv => Some(2),
        BinOp::URem => Some(3),
        _ => None,
    }
}

fn fbin_code(op: BinOp) -> u8 {
    match op {
        BinOp::FAdd => 0,
        BinOp::FSub => 1,
        BinOp::FMul => 2,
        BinOp::FDiv => 3,
        _ => unreachable!("float op"),
    }
}

fn un_code(op: UnOp) -> u8 {
    match op {
        UnOp::FSqrt => 0,
        UnOp::FAbs => 1,
        UnOp::FFloor => 2,
        UnOp::FNeg => 3,
    }
}

fn pred_code(p: IntCC) -> u8 {
    match p {
        IntCC::Eq => 0,
        IntCC::Ne => 1,
        IntCC::Slt => 2,
        IntCC::Sle => 3,
        IntCC::Sgt => 4,
        IntCC::Sge => 5,
        IntCC::Ult => 6,
        IntCC::Ule => 7,
        IntCC::Ugt => 8,
        IntCC::Uge => 9,
    }
}

fn fpred_code(p: FloatCC) -> u8 {
    match p {
        FloatCC::Eq => 0,
        FloatCC::Ne => 1,
        FloatCC::Lt => 2,
        FloatCC::Le => 3,
        FloatCC::Gt => 4,
        FloatCC::Ge => 5,
    }
}

/// `64 - bits`, so `u64::MAX >> sh` is the type's value mask.
fn sh_of(ty: Type) -> u8 {
    (64 - ty.bits()) as u8
}

#[inline(always)]
fn alu64(code: u8, a: i64, b: i64) -> i64 {
    match code {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a.wrapping_mul(b),
        3 => a & b,
        4 => a | b,
        _ => a ^ b,
    }
}

/// The fusible integer-op code space: `alu_code` plus the three shifts
/// (6 = shl, 7 = lshr, 8 = ashr). Div/rem stay out of pairs — their
/// trap path doesn't earn a superinstruction.
fn int_code(op: BinOp) -> Option<u8> {
    match op {
        BinOp::Shl => Some(6),
        BinOp::LShr => Some(7),
        BinOp::AShr => Some(8),
        _ => alu_code(op),
    }
}

/// Executes one fusible integer op on canonical values; `sh` is the
/// type's `64 - bits` shift. The caller canonicalizes the result through
/// [`canon_sh`] with the same `sh`.
#[inline(always)]
fn int_op(code: u8, sh: u8, a: i64, b: i64) -> i64 {
    if code < 6 {
        alu64(code, a, b)
    } else {
        let amt = (b as u64) % (64 - sh as u64);
        match code {
            6 => a.wrapping_shl(amt as u32),
            7 => (((a as u64) & (u64::MAX >> sh)) >> amt) as i64,
            _ => a.wrapping_shr(amt as u32),
        }
    }
}

/// Branch-free canonicalization by arithmetic shift pair — equivalent to
/// `Type::canon` for every integer width except `I1` (which the fusion
/// table excludes from integer-op pairs).
#[inline(always)]
fn canon_sh(sh: u8, v: i64) -> i64 {
    (v << sh) >> sh
}

#[inline(always)]
fn fbin(code: u8, a: f64, b: f64) -> f64 {
    match code {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        _ => a / b,
    }
}

/// Integer compare on canonical (sign-extended) values; unsigned
/// predicates mask to the operand width exactly as the decoded engine
/// does.
#[inline(always)]
fn icmp(pred: u8, sh: u8, av: i64, bv: i64) -> bool {
    match pred {
        0 => av == bv,
        1 => av != bv,
        2 => av < bv,
        3 => av <= bv,
        4 => av > bv,
        5 => av >= bv,
        p => {
            let mask = u64::MAX >> sh;
            let (ua, ub) = ((av as u64) & mask, (bv as u64) & mask);
            match p {
                6 => ua < ub,
                7 => ua <= ub,
                8 => ua > ub,
                _ => ua >= ub,
            }
        }
    }
}

#[inline(always)]
fn fcmp(pred: u8, av: f64, bv: f64) -> bool {
    match pred {
        0 => av == bv,
        1 => av != bv,
        2 => av < bv,
        3 => av <= bv,
        4 => av > bv,
        _ => av >= bv,
    }
}

fn fi(tag: FTag, di: &DInst) -> FInst {
    let cls = OpClass::of_dkind(&di.kind);
    FInst {
        tag,
        x: 0,
        y: 0,
        z: 0,
        w: 0,
        ty: di.ty,
        ty2: di.ty,
        cls1: cls,
        cls2: cls,
        a: 0,
        b: 0,
        c: 0,
        d: 0,
        r1: di.result,
        r2: SLOT_NONE,
        inst1: di.inst,
        inst2: di.inst,
    }
}

/// Lowers one decoded instruction to a specialized single.
fn single(di: &DInst) -> FInst {
    let mut f = fi(FTag::Check, di);
    match di.kind {
        DKind::BinI { op, ty, a, b } => {
            f.a = a;
            f.b = b;
            f.ty = ty;
            if let Some(code) = alu_code(op) {
                if ty == Type::I64 {
                    f.tag = [
                        FTag::Add64,
                        FTag::Sub64,
                        FTag::Mul64,
                        FTag::And64,
                        FTag::Or64,
                        FTag::Xor64,
                    ][code as usize];
                } else {
                    f.tag = FTag::AluN;
                    f.x = code;
                }
            } else if let Some(code) = shift_code(op) {
                f.tag = FTag::Shift;
                f.x = code;
                f.y = sh_of(ty);
            } else {
                f.tag = FTag::DivRem;
                f.x = divrem_code(op).expect("integer binop");
                f.y = sh_of(ty);
            }
        }
        DKind::BinF { op, a, b } => {
            f.tag = FTag::FBin;
            f.x = fbin_code(op);
            f.a = a;
            f.b = b;
        }
        DKind::Un { op, a } => {
            f.tag = FTag::FUn;
            f.x = un_code(op);
            f.a = a;
        }
        DKind::Icmp { pred, ty, a, b } => {
            f.tag = FTag::Icmp;
            f.x = pred_code(pred);
            f.y = sh_of(ty);
            f.a = a;
            f.b = b;
        }
        DKind::Fcmp { pred, a, b } => {
            f.tag = FTag::Fcmp;
            f.x = fpred_code(pred);
            f.a = a;
            f.b = b;
        }
        DKind::Cast { kind, src, a } => {
            f.a = a;
            f.tag = match kind {
                CastKind::Trunc => FTag::Trunc,
                CastKind::SExt => FTag::SExt,
                CastKind::ZExt => {
                    f.x = sh_of(src);
                    FTag::ZExt
                }
                CastKind::FpToSi => FTag::FpToSi,
                CastKind::SiToFp => FTag::SiToFp,
            };
        }
        DKind::Select { c, t, f: fv } => {
            f.tag = FTag::Select;
            f.a = c;
            f.b = t;
            f.c = fv;
        }
        DKind::Load { addr } => {
            f.tag = FTag::Load;
            f.a = addr;
        }
        DKind::Store { addr, val, vty } => {
            f.tag = FTag::Store;
            f.a = addr;
            f.b = val;
            f.ty = vty;
        }
        DKind::Check { cond, .. } => {
            f.tag = FTag::Check;
            f.a = cond;
        }
        DKind::Call {
            callee,
            args_start,
            args_len,
        } => {
            f.tag = FTag::Call;
            f.a = args_start;
            f.b = args_len;
            f.c = callee.index() as u32;
        }
    }
    f
}

/// The fusion table: lowers two adjacent same-block instructions to one
/// superinstruction when they match a hot pattern. Seeded from the
/// `fusible_digrams` ranking on the paper's benchmarks: `icmp→check`
/// (duplication checks; up to 14% of dispatches on `segm`), ALU chains
/// (`add→add`, `sub→icmp`, `mul→add`), `add→load` address arithmetic,
/// `load→sext` narrow reads, `sext→and`, and `icmp→select`.
fn try_fuse_pair(d1: &DInst, d2: &DInst) -> Option<FInst> {
    let mut f = fi(FTag::Check, d1);
    f.r2 = d2.result;
    f.ty2 = d2.ty;
    f.cls2 = OpClass::of_dkind(&d2.kind);
    f.inst2 = d2.inst;
    match (d1.kind, d2.kind) {
        (DKind::Icmp { pred, ty, a, b }, DKind::Check { cond, .. }) => {
            f.tag = FTag::PIcmpCheck;
            f.x = pred_code(pred);
            f.y = sh_of(ty);
            f.a = a;
            f.b = b;
            f.c = cond;
            Some(f)
        }
        (
            DKind::BinI {
                op: op1,
                ty: ty1,
                a,
                b,
            },
            DKind::BinI {
                op: op2,
                ty: ty2,
                a: c,
                b: d,
            },
        ) if ty1 != Type::I1 && ty2 != Type::I1 => {
            f.tag = FTag::PAluAlu;
            f.x = int_code(op1)?;
            f.y = int_code(op2)?;
            f.z = sh_of(ty1);
            f.w = sh_of(ty2);
            f.a = a;
            f.b = b;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (
            DKind::BinI {
                op, ty: ty1, a, b, ..
            },
            DKind::Icmp {
                pred,
                ty,
                a: c,
                b: d,
            },
        ) if ty1 != Type::I1 => {
            f.tag = FTag::PAluIcmp;
            f.x = int_code(op)?;
            f.y = pred_code(pred);
            f.z = sh_of(ty1);
            f.w = sh_of(ty);
            f.a = a;
            f.b = b;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (DKind::BinI { op, ty, a, b }, DKind::Load { addr }) if ty != Type::I1 => {
            f.tag = FTag::PAluLoad;
            f.x = int_code(op)?;
            f.z = sh_of(ty);
            f.a = a;
            f.b = b;
            f.c = addr;
            Some(f)
        }
        (DKind::BinI { op, ty, a, b }, DKind::Store { addr, val, vty }) if ty != Type::I1 => {
            f.tag = FTag::PAluStore;
            f.x = int_code(op)?;
            f.z = sh_of(ty);
            f.ty2 = vty;
            f.a = a;
            f.b = b;
            f.c = addr;
            f.d = val;
            Some(f)
        }
        (
            DKind::Store { addr, val, vty },
            DKind::BinI {
                op, ty, a: c, b: d, ..
            },
        ) if ty != Type::I1 => {
            f.tag = FTag::PStoreAlu;
            f.x = int_code(op)?;
            f.w = sh_of(ty);
            f.ty = vty;
            f.a = addr;
            f.b = val;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (
            DKind::Load { addr },
            DKind::BinI {
                op, ty, a: c, b: d, ..
            },
        ) if ty != Type::I1 => {
            f.tag = FTag::PLoadAlu;
            f.x = int_code(op)?;
            f.w = sh_of(ty);
            f.a = addr;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (DKind::Load { addr }, DKind::BinF { op, a: c, b: d }) => {
            f.tag = FTag::PLoadFBin;
            f.y = fbin_code(op);
            f.a = addr;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (
            DKind::BinF { op: op1, a, b },
            DKind::BinF {
                op: op2,
                a: c,
                b: d,
            },
        ) => {
            f.tag = FTag::PFBinFBin;
            f.x = fbin_code(op1);
            f.y = fbin_code(op2);
            f.a = a;
            f.b = b;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (
            DKind::BinF { op: op1, a, b },
            DKind::BinI {
                op: op2,
                ty,
                a: c,
                b: d,
            },
        ) if ty != Type::I1 => {
            f.tag = FTag::PFBinAlu;
            f.x = fbin_code(op1);
            f.y = int_code(op2)?;
            f.w = sh_of(ty);
            f.a = a;
            f.b = b;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (
            DKind::Load { addr },
            DKind::Cast {
                kind: CastKind::SExt,
                a: src,
                ..
            },
        ) => {
            f.tag = FTag::PLoadSExt;
            f.a = addr;
            f.c = src;
            Some(f)
        }
        (
            DKind::Cast {
                kind: CastKind::SExt,
                a,
                ..
            },
            DKind::BinI {
                op, ty, a: c, b: d, ..
            },
        ) if ty != Type::I1 => {
            f.tag = FTag::PSExtAlu;
            f.y = int_code(op)?;
            f.w = sh_of(ty);
            f.a = a;
            f.c = c;
            f.d = d;
            Some(f)
        }
        (DKind::Icmp { pred, ty, a, b }, DKind::Select { c, t, f: fv }) if c == d1.result => {
            // The select's condition is the compare's own result, so the
            // pair re-reads it through `r1` after the second boundary.
            f.tag = FTag::PIcmpSelect;
            f.x = pred_code(pred);
            f.y = sh_of(ty);
            f.a = a;
            f.b = b;
            f.c = t;
            f.d = fv;
            Some(f)
        }
        (
            DKind::Select { c, t, f: fv },
            DKind::BinI {
                op,
                ty,
                a: sa,
                b: sb,
            },
        ) if (sa == d1.result || sb == d1.result) && ty != Type::I1 => {
            // The ALU consumes the select's own result through `r1`,
            // re-read after the second boundary; the other operand sits
            // in `d`.
            f.tag = FTag::PSelectAlu;
            f.x = int_code(op)?;
            f.z = (sb == d1.result) as u8;
            f.w = sh_of(ty);
            f.a = c;
            f.b = t;
            f.c = fv;
            f.d = if sa == d1.result { sb } else { sa };
            Some(f)
        }
        _ => None,
    }
}

/// Builds one function's superinstruction image: per block, reserve a
/// trailing `icmp` for terminator fusion when the block ends in a
/// `condbr`, then greedily pair the remaining fall-through range against
/// the fusion table (left to right, no overlaps).
pub(crate) fn fuse_func(df: &DecodedFunc) -> FusedFunc {
    let mut fcode: Vec<FInst> = Vec::with_capacity(df.code.len());
    let mut fblocks: Vec<FBlock> = Vec::with_capacity(df.blocks.len());
    let mut fmap: Vec<u32> = vec![0; df.code.len()];
    for blk in &df.blocks {
        let fstart = fcode.len() as u32;
        let term_fuse = match blk.term {
            DTerm::CondBr {
                cond,
                then_edge,
                else_edge,
            } if blk.end > blk.start => {
                let di = &df.code[(blk.end - 1) as usize];
                match di.kind {
                    DKind::Icmp { pred, ty, a, b } => Some(FTermFuse {
                        pred: pred_code(pred),
                        sh: sh_of(ty),
                        inst: di.inst,
                        rty: di.ty,
                        cls: OpClass::of_dkind(&di.kind),
                        a,
                        b,
                        r: di.result,
                        cond,
                        then_edge,
                        else_edge,
                    }),
                    _ => None,
                }
            }
            _ => None,
        };
        let scan_end = if term_fuse.is_some() {
            blk.end - 1
        } else {
            blk.end
        };
        let mut pc = blk.start;
        while pc < scan_end {
            if pc + 1 < scan_end {
                if let Some(p) = try_fuse_pair(&df.code[pc as usize], &df.code[(pc + 1) as usize]) {
                    fmap[pc as usize] = fcode.len() as u32;
                    fmap[(pc + 1) as usize] = fcode.len() as u32;
                    fcode.push(p);
                    pc += 2;
                    continue;
                }
            }
            fmap[pc as usize] = fcode.len() as u32;
            fcode.push(single(&df.code[pc as usize]));
            pc += 1;
        }
        let fend = fcode.len() as u32;
        if term_fuse.is_some() {
            // The reserved compare has no cell; pointing it one past the
            // block's range makes mid-block resume take the fused-term
            // path directly.
            fmap[(blk.end - 1) as usize] = fend;
        }
        fblocks.push(FBlock {
            start: fstart,
            end: fend,
            term_fuse,
        });
    }
    FusedFunc {
        fcode,
        fblocks,
        fmap,
    }
}

/// Executes one decoded instruction outside the fused stream — the
/// realignment path when a snapshot resume lands on the second half of a
/// pair. The caller has already run the boundary sequence and advanced
/// `cur.pc` past `di`. `Call` is unreachable: calls never fuse.
#[cold]
#[allow(clippy::too_many_arguments)]
fn exec_unfused<O: Observer>(
    di: &DInst,
    fid: FuncId,
    func: &Function,
    cur: &mut DFrame,
    mem: &mut Memory,
    state: &mut ExecState,
    obs: &mut O,
    checks_count_only: bool,
) -> Result<(), TrapKind> {
    match di.kind {
        DKind::BinI { op, ty, a, b } => {
            let av = cur.read(a) as i64;
            let bv = cur.read(b) as i64;
            let r: i64 = if let Some(code) = alu_code(op) {
                alu64(code, av, bv)
            } else if let Some(code) = shift_code(op) {
                let amt = (bv as u64) % ty.bits() as u64;
                match code {
                    0 => av.wrapping_shl(amt as u32),
                    1 => (((av as u64) & (u64::MAX >> sh_of(ty))) >> amt) as i64,
                    _ => av.wrapping_shr(amt as u32),
                }
            } else {
                let mask = u64::MAX >> sh_of(ty);
                let (ua, ub) = ((av as u64) & mask, (bv as u64) & mask);
                match divrem_code(op).expect("integer binop") {
                    0 | 1 if bv == 0 => return Err(TrapKind::DivByZero),
                    2 | 3 if ub == 0 => return Err(TrapKind::DivByZero),
                    0 => av.wrapping_div(bv),
                    1 => av.wrapping_rem(bv),
                    2 => (ua / ub) as i64,
                    _ => (ua % ub) as i64,
                }
            };
            let bits = ty.canon(r) as u64;
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::BinF { op, a, b } => {
            let av = f64::from_bits(cur.read(a));
            let bv = f64::from_bits(cur.read(b));
            let bits = match op {
                BinOp::FAdd => av + bv,
                BinOp::FSub => av - bv,
                BinOp::FMul => av * bv,
                BinOp::FDiv => av / bv,
                _ => unreachable!("float op"),
            }
            .to_bits();
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Un { op, a } => {
            let av = f64::from_bits(cur.read(a));
            let bits = match op {
                UnOp::FSqrt => av.sqrt(),
                UnOp::FAbs => av.abs(),
                UnOp::FFloor => av.floor(),
                UnOp::FNeg => -av,
            }
            .to_bits();
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Icmp { pred, ty, a, b } => {
            let av = cur.read(a) as i64;
            let bv = cur.read(b) as i64;
            let bits = icmp(pred_code(pred), sh_of(ty), av, bv) as u64;
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Fcmp { pred, a, b } => {
            let av = f64::from_bits(cur.read(a));
            let bv = f64::from_bits(cur.read(b));
            let bits = fcmp(fpred_code(pred), av, bv) as u64;
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Cast { kind, src, a } => {
            let av = cur.read(a);
            let bits = match kind {
                CastKind::Trunc => di.ty.sign_extend(av) as u64,
                CastKind::SExt => av,
                CastKind::ZExt => av & (u64::MAX >> sh_of(src)),
                CastKind::FpToSi => di.ty.canon(f64::from_bits(av) as i64) as u64,
                CastKind::SiToFp => ((av as i64) as f64).to_bits(),
            };
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Select { c, t, f } => {
            let bits = if cur.read(c) & 1 == 1 {
                cur.read(t)
            } else {
                cur.read(f)
            };
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Load { addr } => {
            let a = cur.read(addr) as i64;
            let bits = mem.load(a, di.ty)?;
            cur.write(di.result, bits);
            obs.on_result(fid, func, di.inst, di.ty, bits);
        }
        DKind::Store { addr, val, vty } => {
            let a = cur.read(addr) as i64;
            let v = cur.read(val);
            mem.store(a, vty, v)?;
        }
        DKind::Check { cond, kind } => {
            let c = cur.read(cond);
            if c & 1 == 0 {
                obs.on_check_fail(fid, func, di.inst);
                if checks_count_only {
                    state.check_failures += 1;
                } else {
                    return Err(TrapKind::SwDetect(kind));
                }
            }
        }
        DKind::Call { .. } => unreachable!("calls never fuse"),
    }
    Ok(())
}

impl<'m> Vm<'m> {
    pub(crate) fn run_fused<O: Observer, S: DSink<O>>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        sink: &mut S,
    ) -> RunResult {
        let mut state = ExecState::new(fault);
        let end = match self.new_dframe(entry, args, 0, obs) {
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
            Ok(mut cur) => {
                let mut stack: Vec<DFrame> = Vec::new();
                let end = match self.exec_fused(&mut cur, &mut stack, &mut state, obs, sink) {
                    Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
                    Ok(MachineEnd::Halted) => unreachable!("run sinks never halt"),
                    Err(kind) => RunEnd::Trap {
                        kind,
                        at_dyn: state.dyn_count,
                    },
                };
                self.scratch.recycle(cur, stack);
                end
            }
        };
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    pub(crate) fn resume_fused<O: Observer>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> RunResult {
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let (mut cur, mut stack) = self.thaw(snap);
        let end = match self.exec_fused(&mut cur, &mut stack, &mut state, obs, &mut DNoSink) {
            Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
            Ok(MachineEnd::Halted) => unreachable!("DNoSink never halts"),
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
        };
        self.scratch.recycle(cur, stack);
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    pub(crate) fn resume_converging_fused<O: SuffixObserver>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let (mut cur, mut stack) = self.thaw(snap);
        let mut sink = crate::decode::DConvergeSink::new(
            candidates,
            self.module,
            crate::interp::spin_core(spin_grid, max_dyn),
        );
        let machine = self.exec_fused(&mut cur, &mut stack, &mut state, obs, &mut sink);
        self.scratch.recycle(cur, stack);
        finish_converging(
            machine,
            state,
            snap.dyn_count,
            sink.spin.take(),
            obs,
            max_dyn,
        )
    }

    pub(crate) fn run_converging_fused<O: SuffixObserver>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        let mut sink = crate::decode::DConvergeSink::new(
            candidates,
            self.module,
            crate::interp::spin_core(spin_grid, max_dyn),
        );
        let machine = match self.new_dframe(entry, args, 0, obs) {
            Err(kind) => Err(kind),
            Ok(mut cur) => {
                let mut stack: Vec<DFrame> = Vec::new();
                let machine = self.exec_fused(&mut cur, &mut stack, &mut state, obs, &mut sink);
                self.scratch.recycle(cur, stack);
                machine
            }
        };
        finish_converging(machine, state, 0, sink.spin.take(), obs, max_dyn)
    }

    /// The fused machine loop. Per constituent, the boundary sequence is
    /// the decoded loop's verbatim (sink → fault trigger → watchdog →
    /// count → observer → profiler), and the second constituent of a pair
    /// reads its operands only after its own boundary, so injections
    /// landing between the halves behave identically to the decoded
    /// engine.
    fn exec_fused<O: Observer, S: DSink<O>>(
        &mut self,
        cur: &mut DFrame,
        stack: &mut Vec<DFrame>,
        state: &mut ExecState,
        obs: &mut O,
        sink: &mut S,
    ) -> Result<MachineEnd, TrapKind> {
        // Monomorphize the machine on profiler presence: the unprofiled
        // loop (every timed interpbench leg, most campaigns) carries no
        // per-constituent `Option` checks at all.
        if self.profiler.is_some() {
            self.exec_fused_inner::<true, O, S>(cur, stack, state, obs, sink)
        } else {
            self.exec_fused_inner::<false, O, S>(cur, stack, state, obs, sink)
        }
    }

    fn exec_fused_inner<const PROF: bool, O: Observer, S: DSink<O>>(
        &mut self,
        cur: &mut DFrame,
        stack: &mut Vec<DFrame>,
        state: &mut ExecState,
        obs: &mut O,
        sink: &mut S,
    ) -> Result<MachineEnd, TrapKind> {
        let Vm {
            module,
            mem,
            config,
            decoded,
            scratch,
            profiler,
        } = self;
        let module: &Module = module;
        let dm: &DecodedModule = decoded;
        let max_dyn = config.max_dyn_insts;
        let max_depth = config.max_call_depth;
        let checks_count_only = config.checks_count_only;
        // With a passive sink and no fault plan, nothing in this run can
        // ever consume the per-frame defined bitmap (no snapshot, no
        // convergence compare, no fault-site walk), so result writes can
        // skip its read-modify-write. Debug builds keep the exact path so
        // `DFrame::read`'s definedness asserts still bite in tests.
        let fast_write = S::PASSIVE && !cfg!(debug_assertions) && state.fault.is_none();
        let mut trigger = match &state.fault {
            Some((plan, _)) => plan.at_dyn,
            None => u64::MAX,
        };
        // Single hot-path compare: the boundary tests `dyn_count`
        // against the nearer of the injection trigger and the watchdog
        // and only disambiguates on the (rare) hit.
        let mut watermark = trigger.min(max_dyn);

        'frames: loop {
            let fid = cur.func;
            let func = module.function(fid);
            let df = &dm.funcs[fid.index()];
            let ff = &dm.fused[fid.index()];

            // One full dynamic-instruction boundary. Expanded per
            // constituent — a fused pair runs it twice.
            macro_rules! boundary {
                () => {
                    if sink.at_boundary(mem, cur, stack, state, obs, dm) {
                        return Ok(MachineEnd::Halted);
                    }
                    if state.dyn_count >= watermark {
                        if state.dyn_count == trigger {
                            inject(state, cur, func, obs);
                        }
                        if state.dyn_count >= max_dyn {
                            return Err(TrapKind::Watchdog);
                        }
                        if state.dyn_count >= trigger {
                            trigger = u64::MAX;
                        }
                        watermark = trigger.min(max_dyn);
                    }
                    state.dyn_count += 1;
                };
            }
            // Second-constituent boundary of a pair: full boundary, then
            // observer/profiler attribution off the embedded identity.
            macro_rules! pair_boundary {
                ($f:expr) => {{
                    boundary!();
                    obs.on_exec(fid, func, $f.inst2);
                    if PROF {
                        if let Some(p) = profiler.as_deref_mut() {
                            p.record($f.cls2);
                        }
                    }
                    cur.pc += 1;
                }};
            }
            macro_rules! pair_retired {
                ($f:expr) => {
                    if PROF {
                        if let Some(p) = profiler.as_deref_mut() {
                            p.record_fused($f.cls1, $f.cls2);
                        }
                    }
                };
            }
            // Result write: the fast path stores the slot without the
            // defined-bitmap update (see `fast_write` above).
            macro_rules! setr {
                ($slot:expr, $bits:expr) => {
                    if fast_write {
                        cur.slots[$slot as usize] = $bits;
                    } else {
                        cur.write($slot, $bits);
                    }
                };
            }
            // Check failure: cold — the `CheckKind` is read back off the
            // constituent `DInst` only here, never on the hot path.
            macro_rules! check_failed {
                ($inst:expr) => {
                    obs.on_check_fail(fid, func, $inst);
                    if checks_count_only {
                        state.check_failures += 1;
                    } else {
                        let DKind::Check { kind, .. } = df.code[(cur.pc - 1) as usize].kind else {
                            unreachable!("check constituent");
                        };
                        return Err(TrapKind::SwDetect(kind));
                    }
                };
            }

            'blocks: loop {
                let blk = df.blocks[cur.block as usize];
                let fb = ff.fblocks[cur.block as usize];
                let mut fpc = if cur.pc == blk.start {
                    fb.start
                } else if cur.pc >= blk.end {
                    fb.end
                } else {
                    ff.fmap[cur.pc as usize]
                };
                if fpc < fb.end && cur.pc > blk.start && ff.fmap[(cur.pc - 1) as usize] == fpc {
                    // A snapshot resume landed on the second half of a
                    // pair (the preceding decoded index maps to the same
                    // cell): retire that one constituent unfused.
                    boundary!();
                    let di = df.code[cur.pc as usize];
                    obs.on_exec(fid, func, di.inst);
                    if PROF {
                        if let Some(p) = profiler.as_deref_mut() {
                            p.record(OpClass::of_dkind(&di.kind));
                        }
                    }
                    cur.pc += 1;
                    exec_unfused(&di, fid, func, cur, mem, state, obs, checks_count_only)?;
                    fpc += 1;
                }

                // The machine loop proper: one slice iteration per cell,
                // no per-instruction bounds checks, no decoded-stream
                // reads — the cell is self-contained.
                for f in &ff.fcode[fpc as usize..fb.end as usize] {
                    boundary!();
                    obs.on_exec(fid, func, f.inst1);
                    if PROF {
                        if let Some(p) = profiler.as_deref_mut() {
                            p.record(f.cls1);
                        }
                    }
                    cur.pc += 1;

                    match f.tag {
                        FTag::Add64 => {
                            let bits =
                                (cur.read(f.a) as i64).wrapping_add(cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Sub64 => {
                            let bits =
                                (cur.read(f.a) as i64).wrapping_sub(cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Mul64 => {
                            let bits =
                                (cur.read(f.a) as i64).wrapping_mul(cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::And64 => {
                            let bits = cur.read(f.a) & cur.read(f.b);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Or64 => {
                            let bits = cur.read(f.a) | cur.read(f.b);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Xor64 => {
                            let bits = cur.read(f.a) ^ cur.read(f.b);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::AluN => {
                            let r = alu64(f.x, cur.read(f.a) as i64, cur.read(f.b) as i64);
                            let bits = f.ty.canon(r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Shift => {
                            let av = cur.read(f.a) as i64;
                            let bv = cur.read(f.b) as i64;
                            let amt = (bv as u64) % f.ty.bits() as u64;
                            let r = match f.x {
                                0 => av.wrapping_shl(amt as u32),
                                1 => (((av as u64) & (u64::MAX >> f.y)) >> amt) as i64,
                                _ => av.wrapping_shr(amt as u32),
                            };
                            let bits = f.ty.canon(r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::DivRem => {
                            let av = cur.read(f.a) as i64;
                            let bv = cur.read(f.b) as i64;
                            let mask = u64::MAX >> f.y;
                            let (ua, ub) = ((av as u64) & mask, (bv as u64) & mask);
                            let r = match f.x {
                                0 | 1 if bv == 0 => return Err(TrapKind::DivByZero),
                                2 | 3 if ub == 0 => return Err(TrapKind::DivByZero),
                                0 => av.wrapping_div(bv),
                                1 => av.wrapping_rem(bv),
                                2 => (ua / ub) as i64,
                                _ => (ua % ub) as i64,
                            };
                            let bits = f.ty.canon(r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::FBin => {
                            let av = f64::from_bits(cur.read(f.a));
                            let bv = f64::from_bits(cur.read(f.b));
                            let bits = match f.x {
                                0 => av + bv,
                                1 => av - bv,
                                2 => av * bv,
                                _ => av / bv,
                            }
                            .to_bits();
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::FUn => {
                            let av = f64::from_bits(cur.read(f.a));
                            let bits = match f.x {
                                0 => av.sqrt(),
                                1 => av.abs(),
                                2 => av.floor(),
                                _ => -av,
                            }
                            .to_bits();
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Icmp => {
                            let bits =
                                icmp(f.x, f.y, cur.read(f.a) as i64, cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Fcmp => {
                            let bits = fcmp(
                                f.x,
                                f64::from_bits(cur.read(f.a)),
                                f64::from_bits(cur.read(f.b)),
                            ) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Trunc => {
                            let bits = f.ty.sign_extend(cur.read(f.a)) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::SExt => {
                            let bits = cur.read(f.a);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::ZExt => {
                            let bits = cur.read(f.a) & (u64::MAX >> f.x);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::FpToSi => {
                            let bits = f.ty.canon(f64::from_bits(cur.read(f.a)) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::SiToFp => {
                            let bits = ((cur.read(f.a) as i64) as f64).to_bits();
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Select => {
                            let bits = if cur.read(f.a) & 1 == 1 {
                                cur.read(f.b)
                            } else {
                                cur.read(f.c)
                            };
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Load => {
                            let a = cur.read(f.a) as i64;
                            let bits = mem.load(a, f.ty)?;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                        }
                        FTag::Store => {
                            let a = cur.read(f.a) as i64;
                            let v = cur.read(f.b);
                            mem.store(a, f.ty, v)?;
                        }
                        FTag::Check => {
                            if cur.read(f.a) & 1 == 0 {
                                check_failed!(f.inst1);
                            }
                        }
                        FTag::Call => {
                            scratch.call_args.clear();
                            for &a in &df.call_args[f.a as usize..(f.a + f.b) as usize] {
                                scratch.call_args.push(cur.read(a));
                            }
                            let depth = stack.len() as u32 + 1;
                            if depth >= max_depth {
                                return Err(TrapKind::CallDepth);
                            }
                            let callee = FuncId::new(f.c as usize);
                            let cfunc = module.function(callee);
                            let dfc = &dm.funcs[f.c as usize];
                            assert_eq!(
                                scratch.call_args.len(),
                                dfc.params.len(),
                                "arity mismatch calling {}",
                                cfunc.name
                            );
                            let mut callee_frame = scratch.free_frames.pop().unwrap_or_default();
                            {
                                let n = dfc.num_values as usize;
                                callee_frame.func = callee;
                                callee_frame.num_values = dfc.num_values;
                                callee_frame.slots.clear();
                                callee_frame.slots.resize(n, 0);
                                callee_frame.slots.extend_from_slice(&dfc.consts);
                                callee_frame.defined.clear();
                                callee_frame.defined.resize(n.div_ceil(64), 0);
                                callee_frame.lenient = false;
                                callee_frame.block = dfc.entry;
                                callee_frame.pc = dfc.entry_pc;
                                callee_frame.call_inst = None;
                                callee_frame.ret_slot = SLOT_NONE;
                                callee_frame.ret_ty = Type::I64;
                            }
                            for (&a, &(slot, ty)) in scratch.call_args.iter().zip(&dfc.params) {
                                let canon = if ty.is_float() {
                                    a
                                } else {
                                    ty.sign_extend(a) as u64
                                };
                                callee_frame.write(slot, canon);
                            }
                            obs.on_enter(callee, cfunc);
                            cur.call_inst = Some(f.inst1);
                            cur.ret_slot = f.r1;
                            cur.ret_ty = f.ty;
                            stack.push(std::mem::replace(cur, callee_frame));
                            continue 'frames;
                        }

                        FTag::PIcmpCheck => {
                            let bits =
                                icmp(f.x, f.y, cur.read(f.a) as i64, cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            // Re-read after the boundary: an injection
                            // between the halves must be visible.
                            if cur.read(f.c) & 1 == 0 {
                                check_failed!(f.inst2);
                            }
                            pair_retired!(f);
                        }
                        FTag::PAluAlu => {
                            let r = int_op(f.x, f.z, cur.read(f.a) as i64, cur.read(f.b) as i64);
                            let bits = canon_sh(f.z, r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let r = int_op(f.y, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64);
                            let bits = canon_sh(f.w, r) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PAluIcmp => {
                            let r = int_op(f.x, f.z, cur.read(f.a) as i64, cur.read(f.b) as i64);
                            let bits = canon_sh(f.z, r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let bits =
                                icmp(f.y, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PAluLoad => {
                            let r = int_op(f.x, f.z, cur.read(f.a) as i64, cur.read(f.b) as i64);
                            let bits = canon_sh(f.z, r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let a = cur.read(f.c) as i64;
                            let bits = mem.load(a, f.ty2)?;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PLoadSExt => {
                            let a = cur.read(f.a) as i64;
                            let bits = mem.load(a, f.ty)?;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let bits = cur.read(f.c);
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PSExtAlu => {
                            let bits = cur.read(f.a);
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let r = int_op(f.y, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64);
                            let bits = canon_sh(f.w, r) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PIcmpSelect => {
                            let bits =
                                icmp(f.x, f.y, cur.read(f.a) as i64, cur.read(f.b) as i64) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            // The condition is the compare's result slot,
                            // re-read after the boundary.
                            let bits = if cur.read(f.r1) & 1 == 1 {
                                cur.read(f.c)
                            } else {
                                cur.read(f.d)
                            };
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PSelectAlu => {
                            let bits = if cur.read(f.a) & 1 == 1 {
                                cur.read(f.b)
                            } else {
                                cur.read(f.c)
                            };
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            // The select result flows in through `r1`,
                            // re-read after the boundary.
                            let (av, bv) = if f.z == 0 {
                                (cur.read(f.r1) as i64, cur.read(f.d) as i64)
                            } else {
                                (cur.read(f.d) as i64, cur.read(f.r1) as i64)
                            };
                            let bits = canon_sh(f.w, int_op(f.x, f.w, av, bv)) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PLoadAlu => {
                            let a = cur.read(f.a) as i64;
                            let bits = mem.load(a, f.ty)?;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let r = int_op(f.x, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64);
                            let bits = canon_sh(f.w, r) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PAluStore => {
                            let r = int_op(f.x, f.z, cur.read(f.a) as i64, cur.read(f.b) as i64);
                            let bits = canon_sh(f.z, r) as u64;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let a = cur.read(f.c) as i64;
                            let v = cur.read(f.d);
                            mem.store(a, f.ty2, v)?;
                            pair_retired!(f);
                        }
                        FTag::PStoreAlu => {
                            let a = cur.read(f.a) as i64;
                            let v = cur.read(f.b);
                            mem.store(a, f.ty, v)?;
                            pair_boundary!(f);
                            let r = int_op(f.x, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64);
                            let bits = canon_sh(f.w, r) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PFBinFBin => {
                            let av = f64::from_bits(cur.read(f.a));
                            let bv = f64::from_bits(cur.read(f.b));
                            let bits = fbin(f.x, av, bv).to_bits();
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let cv = f64::from_bits(cur.read(f.c));
                            let dv = f64::from_bits(cur.read(f.d));
                            let bits = fbin(f.y, cv, dv).to_bits();
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PFBinAlu => {
                            let av = f64::from_bits(cur.read(f.a));
                            let bv = f64::from_bits(cur.read(f.b));
                            let bits = fbin(f.x, av, bv).to_bits();
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let r = int_op(f.y, f.w, cur.read(f.c) as i64, cur.read(f.d) as i64);
                            let bits = canon_sh(f.w, r) as u64;
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                        FTag::PLoadFBin => {
                            let a = cur.read(f.a) as i64;
                            let bits = mem.load(a, f.ty)?;
                            setr!(f.r1, bits);
                            obs.on_result(fid, func, f.inst1, f.ty, bits);
                            pair_boundary!(f);
                            let cv = f64::from_bits(cur.read(f.c));
                            let dv = f64::from_bits(cur.read(f.d));
                            let bits = fbin(f.y, cv, dv).to_bits();
                            setr!(f.r2, bits);
                            obs.on_result(fid, func, f.inst2, f.ty2, bits);
                            pair_retired!(f);
                        }
                    }
                }

                // Fused icmp+condbr terminator: compare boundary, then
                // terminator boundary, each in full.
                if let Some(tf) = fb.term_fuse {
                    if cur.pc == blk.end - 1 {
                        boundary!();
                        obs.on_exec(fid, func, tf.inst);
                        if PROF {
                            if let Some(p) = profiler.as_deref_mut() {
                                p.record(tf.cls);
                            }
                        }
                        cur.pc = blk.end;
                        let bits =
                            icmp(tf.pred, tf.sh, cur.read(tf.a) as i64, cur.read(tf.b) as i64)
                                as u64;
                        setr!(tf.r, bits);
                        obs.on_result(fid, func, tf.inst, tf.rty, bits);

                        boundary!();
                        obs.on_term(fid, func, BlockId::new(cur.block as usize));
                        if PROF {
                            if let Some(p) = profiler.as_deref_mut() {
                                p.record(OpClass::of_dterm(&blk.term));
                                p.record_fused(tf.cls, OpClass::CONDBR);
                            }
                        }
                        // Re-read the condition after the boundary.
                        let e = if cur.read(tf.cond) & 1 == 1 {
                            tf.then_edge
                        } else {
                            tf.else_edge
                        };
                        take_edge(fid, func, df, cur, e, state, obs, &mut scratch.phi_writes);
                        continue 'blocks;
                    }
                }

                // Plain terminator boundary (also reached when a resume
                // lands exactly on a fused terminator's branch half).
                if sink.at_boundary(mem, cur, stack, state, obs, dm) {
                    return Ok(MachineEnd::Halted);
                }
                if state.dyn_count >= watermark {
                    if state.dyn_count == trigger {
                        inject(state, cur, func, obs);
                    }
                    if state.dyn_count >= max_dyn {
                        return Err(TrapKind::Watchdog);
                    }
                    if state.dyn_count >= trigger {
                        trigger = u64::MAX;
                    }
                    watermark = trigger.min(max_dyn);
                }
                state.dyn_count += 1;
                obs.on_term(fid, func, BlockId::new(cur.block as usize));
                if PROF {
                    if let Some(p) = profiler.as_deref_mut() {
                        p.record(OpClass::of_dterm(&blk.term));
                    }
                }
                match blk.term {
                    DTerm::Br { edge } => {
                        take_edge(
                            fid,
                            func,
                            df,
                            cur,
                            edge,
                            state,
                            obs,
                            &mut scratch.phi_writes,
                        );
                    }
                    DTerm::CondBr {
                        cond,
                        then_edge,
                        else_edge,
                    } => {
                        let c = cur.read(cond);
                        let e = if c & 1 == 1 { then_edge } else { else_edge };
                        take_edge(fid, func, df, cur, e, state, obs, &mut scratch.phi_writes);
                    }
                    DTerm::Ret(v) => {
                        let ret = v.map(|o| cur.read(o));
                        obs.on_exit(fid);
                        let Some(caller) = stack.pop() else {
                            return Ok(MachineEnd::Ret(ret));
                        };
                        scratch.free_frames.push(std::mem::replace(cur, caller));
                        let caller_func = module.function(cur.func);
                        let i = cur.call_inst.take().expect("returning to a call site");
                        let rs = cur.ret_slot;
                        if rs != SLOT_NONE {
                            let bits = ret.expect("verified call returns a value");
                            setr!(rs, bits);
                            obs.on_result(cur.func, caller_func, i, cur.ret_ty, bits);
                        }
                        continue 'frames;
                    }
                    DTerm::Missing => panic!("verified function has terminators"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::inst::CheckKind;

    /// Every cell's constituents stay inside its block and map back
    /// through `fmap`; pairs are adjacent; a terminator-fused compare is
    /// excluded from the cell range.
    fn check_image(df: &DecodedFunc, ff: &FusedFunc) {
        assert_eq!(ff.fmap.len(), df.code.len());
        assert_eq!(ff.fblocks.len(), df.blocks.len());
        for (blk, fb) in df.blocks.iter().zip(&ff.fblocks) {
            let scan_end = if fb.term_fuse.is_some() {
                assert!(matches!(blk.term, DTerm::CondBr { .. }));
                assert!(matches!(
                    df.code[(blk.end - 1) as usize].kind,
                    DKind::Icmp { .. }
                ));
                assert_eq!(ff.fmap[(blk.end - 1) as usize], fb.end);
                blk.end - 1
            } else {
                blk.end
            };
            let mut pc = blk.start;
            for fidx in fb.start..fb.end {
                let f = &ff.fcode[fidx as usize];
                let n = if is_pair(f.tag) { 2 } else { 1 };
                for k in 0..n {
                    assert_eq!(ff.fmap[(pc + k) as usize], fidx);
                }
                pc += n;
                assert!(pc <= scan_end, "fusion never crosses the block boundary");
            }
            assert_eq!(pc, scan_end, "every decoded instruction has a cell");
        }
    }

    fn is_pair(tag: FTag) -> bool {
        matches!(
            tag,
            FTag::PIcmpCheck
                | FTag::PAluAlu
                | FTag::PAluIcmp
                | FTag::PAluLoad
                | FTag::PLoadSExt
                | FTag::PSExtAlu
                | FTag::PIcmpSelect
                | FTag::PSelectAlu
                | FTag::PLoadAlu
                | FTag::PAluStore
                | FTag::PStoreAlu
                | FTag::PFBinFBin
                | FTag::PFBinAlu
                | FTag::PLoadFBin
        )
    }

    #[test]
    fn fused_images_are_wellformed_for_looping_kernels() {
        use softft_ir::dsl::FunctionDsl;
        let mut m = softft_ir::Module::new("loops");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(10));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let p = d.mul(a, i);
                let q = d.add(p, i);
                let zero = d.i64c(0);
                let neg = d.icmp(IntCC::Slt, q, zero);
                let fixed = d.sub(zero, q);
                let v = d.select(neg, fixed, q);
                d.set(acc, v);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        softft_ir::verify::verify_module(&m).expect("verified module");
        let dm = DecodedModule::decode(&m);
        assert_eq!(dm.funcs.len(), dm.fused.len());
        for (df, ff) in dm.funcs.iter().zip(&dm.fused) {
            check_image(df, ff);
        }
        // The loop back-edge test fuses into its conditional branch.
        assert!(dm
            .fused
            .iter()
            .any(|ff| ff.fblocks.iter().any(|fb| fb.term_fuse.is_some())));
    }

    #[test]
    fn fusion_table_matches_expected_pairs() {
        // A straight-line stream: the add+add chain and the duplication
        // icmp+check signature each fuse to one cell.
        use softft_ir::dsl::FunctionDsl;
        let mut m = softft_ir::Module::new("fusion_pairs");
        let f = FunctionDsl::build("pairs", &[Type::I64, Type::I64], Some(Type::I64), |d| {
            let a = d.param(0);
            let b = d.param(1);
            let s = d.add(a, b); // add + add → PAluAlu
            let t = d.add(s, b);
            let c = d.icmp(IntCC::Eq, s, t); // icmp + check → PIcmpCheck
            d.check(c, CheckKind::DupMismatch);
            d.ret(Some(t));
        });
        let fid = m.add_function(f);
        softft_ir::verify::verify_module(&m).expect("verified module");
        let dm = DecodedModule::decode(&m);
        let ff = &dm.fused[fid.index()];
        check_image(&dm.funcs[fid.index()], ff);
        let tags: Vec<FTag> = ff.fcode.iter().map(|f| f.tag).collect();
        assert_eq!(tags, vec![FTag::PAluAlu, FTag::PIcmpCheck]);
    }
}
