//! Pre-decoded flat bytecode for the interpreter.
//!
//! [`DecodedModule::decode`] lowers every [`Function`] once into a
//! [`DecodedFunc`]: a dense array of fixed-size decoded instructions with
//! operands pre-resolved to frame-slot indices, constants inlined into a
//! per-function immediate pool, result types precomputed, phi-copy
//! schedules materialized per CFG edge, and branch targets as flat code
//! indices. The decoded image is immutable after construction, so one
//! `Arc<DecodedModule>` is shared read-only across campaign workers and
//! snapshot-resumed trials.
//!
//! The decoded engine ([`Vm::run`] and friends dispatch to it unless
//! [`crate::interp::VmConfig::reference_interp`] is set) executes over
//! flat `u64` slot frames instead of `Vec<Option<u64>>`. Two invariants
//! keep it *bitwise identical* to the tree-walking reference path:
//!
//! * **Decode is semantics-preserving.** Operand resolution, constant
//!   inlining and phi-schedule materialization never reorder, duplicate
//!   or elide work: each dynamic instruction boundary runs the same
//!   sequence (sink → fault trigger → watchdog → count → observer →
//!   execute), phis stay parallel copies executed inside the edge (not
//!   counted as dynamic instructions), and terminators are counted —
//!   exactly as in the reference machine loop.
//! * **Fault sites are keyed identically.** A per-frame defined-bitmask
//!   mirrors the reference frame's `Some`/`None` slot states, so the
//!   injector enumerates the same candidate list in the same (ascending
//!   value-index) order and consumes its seeded RNG identically; the
//!   garbage-read semantics after a branch-target fault fall out of the
//!   flat representation (never-written slots read as zero).
//!
//! Snapshots remain in the reference [`Frame`] representation: decoded
//! frames convert to/from it at checkpoint-capture, resume and
//! convergence-comparison boundaries (all of which are rare relative to
//! instruction execution), which keeps [`Snapshot`] layout, sizes, and
//! the campaign checkpoint store byte-compatible across both engines.

use crate::fault::{flip_bit, FaultKind, FaultPlan, InjectionRecord};
use crate::interp::{
    finish_converging, resolve_frame, spin_core, ConvergeOutcome, ExecState, Frame, MachineEnd,
    Observer, Resolution, Snapshot, SpinCmp, SpinCore, SuffixObserver, Vm,
};
use crate::memory::Memory;
use crate::outcome::{RunEnd, RunResult, TrapKind};
use crate::profile::OpClass;
use softft_ir::function::{Function, ValueKind};
use softft_ir::inst::{BinOp, CastKind, CheckKind, FloatCC, IntCC, Op, Term, UnOp};
use softft_ir::{BlockId, FuncId, InstId, Module, Type, ValueId};

/// Slot index meaning "no result".
pub(crate) const SLOT_NONE: u32 = u32::MAX;

/// A pre-resolved operand: an index into the frame's slot array. Value
/// operands map to their SSA slot; constants map into the immediate pool
/// appended after the value slots, so reads never branch on operand kind.
type Operand = u32;

/// One decoded (non-phi) instruction. Fixed size, stored contiguously in
/// [`DecodedFunc::code`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct DInst {
    pub(crate) kind: DKind,
    /// The original instruction id (observer callbacks are keyed by it).
    pub(crate) inst: InstId,
    /// Result slot, or [`SLOT_NONE`].
    pub(crate) result: u32,
    /// Result type (placeholder `I64` for resultless instructions).
    pub(crate) ty: Type,
}

/// Decoded opcode + operands. Types that the reference evaluator looks up
/// per execution (`func.value_type`) are precomputed here.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DKind {
    /// Float binary op (FAdd/FSub/FMul/FDiv).
    BinF {
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// Integer binary op; `ty` is the operand type.
    BinI {
        op: BinOp,
        ty: Type,
        a: Operand,
        b: Operand,
    },
    Un {
        op: UnOp,
        a: Operand,
    },
    /// Integer compare; `ty` is the operand type.
    Icmp {
        pred: IntCC,
        ty: Type,
        a: Operand,
        b: Operand,
    },
    Fcmp {
        pred: FloatCC,
        a: Operand,
        b: Operand,
    },
    /// Cast; `src` is the source type (result type is on the [`DInst`]).
    Cast {
        kind: CastKind,
        src: Type,
        a: Operand,
    },
    Select {
        c: Operand,
        t: Operand,
        f: Operand,
    },
    Load {
        addr: Operand,
    },
    /// Store; `vty` is the stored value's type.
    Store {
        addr: Operand,
        val: Operand,
        vty: Type,
    },
    /// Call; arguments live in [`DecodedFunc::call_args`].
    Call {
        callee: FuncId,
        args_start: u32,
        args_len: u32,
    },
    Check {
        cond: Operand,
        kind: CheckKind,
    },
}

/// Decoded terminator with branch targets as edge indices.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DTerm {
    Br {
        edge: u32,
    },
    CondBr {
        cond: Operand,
        then_edge: u32,
        else_edge: u32,
    },
    Ret(Option<Operand>),
    /// The block has no terminator; reaching it is the same verifier-bug
    /// panic the reference path raises.
    Missing,
}

/// One decoded basic block: a contiguous range of [`DecodedFunc::code`]
/// (phis excluded — they run on edges) plus its phi table and terminator.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DBlock {
    /// First decoded instruction in `code`.
    pub(crate) start: u32,
    /// One past the last decoded instruction (`pc == end` ⇒ terminator).
    pub(crate) end: u32,
    /// This block's phis in [`DecodedFunc::phis`].
    pub(crate) phi_start: u32,
    pub(crate) phi_end: u32,
    pub(crate) term: DTerm,
}

impl DBlock {
    /// Number of phis (== index of the first non-phi in the reference
    /// block's instruction list, used to map `pc` ↔ `Frame::ip`).
    #[inline]
    pub(crate) fn phi_count(&self) -> u32 {
        self.phi_end - self.phi_start
    }
}

/// A materialized phi copy on a CFG edge.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DCopy {
    pub(crate) dst: u32,
    pub(crate) src: Operand,
    /// Original phi instruction (for `Observer::on_phi`).
    pub(crate) phi: InstId,
    /// The incoming value selected on this edge (for `Observer::on_phi`).
    pub(crate) incoming: ValueId,
}

/// One CFG edge with its phi-copy schedule resolved at decode time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DEdge {
    /// Target block index.
    pub(crate) target: u32,
    /// `code` index of the target's first instruction.
    pub(crate) entry_pc: u32,
    /// Copy schedule in [`DecodedFunc::copies`] (block phi order).
    pub(crate) copies_start: u32,
    pub(crate) copies_end: u32,
    /// False when some target phi lacks an incoming for this edge (only
    /// possible in unverified IR): the edge then takes the generic
    /// transfer path, which reproduces the reference assertion.
    pub(crate) complete: bool,
}

/// A phi with all its incomings — used for generic (non-materialized)
/// transfers after a branch-target fault lands on an arbitrary block.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DPhi {
    pub(crate) dst: u32,
    pub(crate) phi: InstId,
    /// Range in [`DecodedFunc::phi_incomings`].
    pub(crate) inc_start: u32,
    pub(crate) inc_end: u32,
}

/// One function lowered to flat bytecode.
#[derive(Debug)]
pub(crate) struct DecodedFunc {
    /// Number of SSA value slots (the immediate pool sits after them).
    pub(crate) num_values: u32,
    /// Parameter slots and types, in order.
    pub(crate) params: Vec<(u32, Type)>,
    /// Constant bits, indexed by `operand - num_values`.
    pub(crate) consts: Vec<u64>,
    pub(crate) code: Vec<DInst>,
    pub(crate) blocks: Vec<DBlock>,
    pub(crate) edges: Vec<DEdge>,
    pub(crate) copies: Vec<DCopy>,
    pub(crate) phis: Vec<DPhi>,
    /// `(pred block index, src operand, src value)` tuples.
    pub(crate) phi_incomings: Vec<(u32, Operand, ValueId)>,
    /// Argument operands for all calls, ranged by [`DKind::Call`].
    pub(crate) call_args: Vec<Operand>,
    /// Entry block index and its first code index.
    pub(crate) entry: u32,
    pub(crate) entry_pc: u32,
}

/// A module's functions lowered once, shared read-only by every VM
/// executing that module (campaign workers, resumed trials, profilers).
#[derive(Debug)]
pub struct DecodedModule {
    pub(crate) funcs: Vec<DecodedFunc>,
    /// The superinstruction (fused) image of each function, built over
    /// the decoded stream by [`crate::fuse::fuse_func`]. Fusion is a pure
    /// view: it never changes `funcs`, so both the decoded and the fused
    /// engine share one `Arc<DecodedModule>`.
    pub(crate) fused: Vec<crate::fuse::FusedFunc>,
}

impl DecodedModule {
    /// Lowers every function of `module`. Decode is pure and
    /// deterministic; the result is only valid for that exact module.
    pub fn decode(module: &Module) -> DecodedModule {
        let funcs: Vec<DecodedFunc> = module.functions().iter().map(decode_func).collect();
        let fused = funcs.iter().map(crate::fuse::fuse_func).collect();
        DecodedModule { funcs, fused }
    }
}

fn decode_func(func: &Function) -> DecodedFunc {
    let num_values = func.num_values();
    // Operand resolution: value slot for SSA values, immediate-pool slot
    // (after the value region) for constants.
    let mut consts: Vec<u64> = Vec::new();
    let mut operand_map: Vec<u32> = Vec::with_capacity(num_values);
    for v in 0..num_values {
        let vid = ValueId::new(v);
        match func.value(vid).kind {
            ValueKind::Const(c) => {
                operand_map.push((num_values + consts.len()) as u32);
                consts.push(c.bits());
            }
            _ => operand_map.push(v as u32),
        }
    }
    let resolve = |v: ValueId| -> Operand { operand_map[v.index()] };

    let params: Vec<(u32, Type)> = (0..func.params.len())
        .map(|i| {
            let p = func.param(i);
            (p.index() as u32, func.value_type(p))
        })
        .collect();

    let mut code: Vec<DInst> = Vec::new();
    let mut blocks: Vec<DBlock> = Vec::with_capacity(func.num_blocks());
    let mut phis: Vec<DPhi> = Vec::new();
    let mut phi_incomings: Vec<(u32, Operand, ValueId)> = Vec::new();
    let mut call_args: Vec<Operand> = Vec::new();

    for b in func.block_ids() {
        let start = code.len() as u32;
        let phi_start = phis.len() as u32;
        let mut in_phi_prefix = true;
        for &i in &func.block(b).insts {
            let inst = func.inst(i);
            if let Op::Phi { incomings } = &inst.op {
                assert!(
                    in_phi_prefix,
                    "phi {i} after non-phi instructions in {b} of {}",
                    func.name
                );
                let inc_start = phi_incomings.len() as u32;
                for &(pred, v) in incomings {
                    phi_incomings.push((pred.index() as u32, resolve(v), v));
                }
                let r = inst.result.expect("phi has result");
                phis.push(DPhi {
                    dst: r.index() as u32,
                    phi: i,
                    inc_start,
                    inc_end: phi_incomings.len() as u32,
                });
                continue;
            }
            in_phi_prefix = false;
            let (result, ty) = match inst.result {
                Some(r) => (r.index() as u32, func.value_type(r)),
                None => (SLOT_NONE, Type::I64),
            };
            let kind = match &inst.op {
                Op::Bin { op, lhs, rhs } => {
                    if op.is_float() {
                        DKind::BinF {
                            op: *op,
                            a: resolve(*lhs),
                            b: resolve(*rhs),
                        }
                    } else {
                        DKind::BinI {
                            op: *op,
                            ty: func.value_type(*lhs),
                            a: resolve(*lhs),
                            b: resolve(*rhs),
                        }
                    }
                }
                Op::Un { op, arg } => DKind::Un {
                    op: *op,
                    a: resolve(*arg),
                },
                Op::Icmp { pred, lhs, rhs } => DKind::Icmp {
                    pred: *pred,
                    ty: func.value_type(*lhs),
                    a: resolve(*lhs),
                    b: resolve(*rhs),
                },
                Op::Fcmp { pred, lhs, rhs } => DKind::Fcmp {
                    pred: *pred,
                    a: resolve(*lhs),
                    b: resolve(*rhs),
                },
                Op::Cast { kind, arg } => DKind::Cast {
                    kind: *kind,
                    src: func.value_type(*arg),
                    a: resolve(*arg),
                },
                Op::Select {
                    cond,
                    on_true,
                    on_false,
                } => DKind::Select {
                    c: resolve(*cond),
                    t: resolve(*on_true),
                    f: resolve(*on_false),
                },
                Op::Load { addr } => DKind::Load {
                    addr: resolve(*addr),
                },
                Op::Store { addr, value } => DKind::Store {
                    addr: resolve(*addr),
                    val: resolve(*value),
                    vty: func.value_type(*value),
                },
                Op::Call { func: callee, args } => {
                    let args_start = call_args.len() as u32;
                    call_args.extend(args.iter().map(|&a| resolve(a)));
                    DKind::Call {
                        callee: *callee,
                        args_start,
                        args_len: args.len() as u32,
                    }
                }
                Op::Check { cond, kind } => DKind::Check {
                    cond: resolve(*cond),
                    kind: *kind,
                },
                Op::Phi { .. } => unreachable!("handled above"),
            };
            code.push(DInst {
                kind,
                inst: i,
                result,
                ty,
            });
        }
        blocks.push(DBlock {
            start,
            end: code.len() as u32,
            phi_start,
            phi_end: phis.len() as u32,
            term: DTerm::Missing,
        });
    }

    // Second pass: terminators and per-edge phi-copy schedules (target
    // block starts are known now).
    let mut edges: Vec<DEdge> = Vec::new();
    let mut copies: Vec<DCopy> = Vec::new();
    // `make_edge` borrows `blocks` immutably, so the terminators are
    // collected first and patched into the blocks once it goes out of
    // scope.
    let terms: Vec<DTerm> = {
        let mut make_edge = |from: BlockId, to: BlockId| -> u32 {
            let tgt = &blocks[to.index()];
            let copies_start = copies.len() as u32;
            let mut complete = true;
            for p in &phis[tgt.phi_start as usize..tgt.phi_end as usize] {
                let inc = phi_incomings[p.inc_start as usize..p.inc_end as usize]
                    .iter()
                    .find(|(pb, _, _)| *pb == from.index() as u32);
                match inc {
                    Some(&(_, src, vid)) => copies.push(DCopy {
                        dst: p.dst,
                        src,
                        phi: p.phi,
                        incoming: vid,
                    }),
                    None => complete = false,
                }
            }
            edges.push(DEdge {
                target: to.index() as u32,
                entry_pc: tgt.start,
                copies_start,
                copies_end: copies.len() as u32,
                complete,
            });
            (edges.len() - 1) as u32
        };
        func.block_ids()
            .map(|b| match &func.block(b).term {
                None => DTerm::Missing,
                Some(Term::Br(t)) => DTerm::Br {
                    edge: make_edge(b, *t),
                },
                Some(Term::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                }) => DTerm::CondBr {
                    cond: resolve(*cond),
                    then_edge: make_edge(b, *then_bb),
                    else_edge: make_edge(b, *else_bb),
                },
                Some(Term::Ret(v)) => DTerm::Ret(v.map(resolve)),
            })
            .collect()
    };
    for (blk, term) in blocks.iter_mut().zip(terms) {
        blk.term = term;
    }

    let entry = func.entry().index();
    let entry_pc = blocks[entry].start;
    DecodedFunc {
        num_values: num_values as u32,
        params,
        consts,
        code,
        blocks,
        edges,
        copies,
        phis,
        phi_incomings,
        call_args,
        entry: entry as u32,
        entry_pc,
    }
}

/// A flat activation record: `slots` holds one `u64` per SSA value
/// followed by the function's immediate pool; `defined` mirrors the
/// reference frame's `Some`/`None` slot states (value region only).
#[derive(Debug)]
pub(crate) struct DFrame {
    pub(crate) func: FuncId,
    pub(crate) num_values: u32,
    pub(crate) slots: Vec<u64>,
    pub(crate) defined: Vec<u64>,
    pub(crate) lenient: bool,
    pub(crate) block: u32,
    pub(crate) pc: u32,
    pub(crate) call_inst: Option<InstId>,
    /// Derived from `call_inst` (caller-side result slot/type), cached so
    /// returns don't re-query the IR.
    pub(crate) ret_slot: u32,
    pub(crate) ret_ty: Type,
}

impl Default for DFrame {
    fn default() -> Self {
        DFrame {
            func: FuncId::new(0),
            num_values: 0,
            slots: Vec::new(),
            defined: Vec::new(),
            lenient: false,
            block: 0,
            pc: 0,
            call_inst: None,
            ret_slot: SLOT_NONE,
            ret_ty: Type::I64,
        }
    }
}

impl DFrame {
    #[inline(always)]
    pub(crate) fn read(&self, o: Operand) -> u64 {
        debug_assert!(
            o >= self.num_values || self.lenient || self.defined_bit(o as usize),
            "SSA: use before def"
        );
        self.slots[o as usize]
    }

    #[inline(always)]
    pub(crate) fn write(&mut self, slot: u32, bits: u64) {
        self.slots[slot as usize] = bits;
        self.defined[(slot >> 6) as usize] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn defined_bit(&self, i: usize) -> bool {
        (self.defined[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Converts to the reference/snapshot representation.
    pub(crate) fn to_frame(&self, df: &DecodedFunc) -> Frame {
        let n = df.num_values as usize;
        let mut slots: Vec<Option<u64>> = vec![None; n];
        for (i, slot) in slots.iter_mut().enumerate() {
            if self.defined_bit(i) {
                *slot = Some(self.slots[i]);
            }
        }
        let b = &df.blocks[self.block as usize];
        Frame {
            func: self.func,
            slots,
            lenient: self.lenient,
            block: BlockId::new(self.block as usize),
            ip: (b.phi_count() + (self.pc - b.start)) as usize,
            call_inst: self.call_inst,
        }
    }

    /// Bitwise state equality against a reference frame — the decoded
    /// side of the convergence comparison.
    pub(crate) fn matches(&self, df: &DecodedFunc, frame: &Frame) -> bool {
        if self.func != frame.func
            || self.lenient != frame.lenient
            || self.call_inst != frame.call_inst
            || frame.block.index() != self.block as usize
        {
            return false;
        }
        let b = &df.blocks[self.block as usize];
        if frame.ip != (b.phi_count() + (self.pc - b.start)) as usize {
            return false;
        }
        let n = df.num_values as usize;
        if frame.slots.len() != n {
            return false;
        }
        for (i, s) in frame.slots.iter().enumerate() {
            match *s {
                Some(bits) => {
                    if !self.defined_bit(i) || self.slots[i] != bits {
                        return false;
                    }
                }
                None => {
                    if self.defined_bit(i) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Decoded counterpart of [`crate::interp::frame_drift`]: grades this
    /// frame against a reference anchor frame without materializing a
    /// conversion. Mismatches carry a differing slot index as the next
    /// O(1) witness when the mismatch was in the slots. Lenient frames
    /// never drift.
    pub(crate) fn drift(&self, df: &DecodedFunc, frame: &Frame, witness: Option<usize>) -> SpinCmp {
        if frame.block.index() != self.block as usize
            || self.func != frame.func
            || self.lenient != frame.lenient
            || self.call_inst != frame.call_inst
        {
            return SpinCmp::Mismatch(None);
        }
        let b = &df.blocks[self.block as usize];
        if frame.ip != (b.phi_count() + (self.pc - b.start)) as usize {
            return SpinCmp::Mismatch(None);
        }
        let n = df.num_values as usize;
        if frame.slots.len() != n {
            return SpinCmp::Mismatch(None);
        }
        // O(1) witness: a slot that differed last time usually still does.
        if let Some(w) = witness {
            let differs = match frame.slots.get(w) {
                Some(&Some(bits)) => !self.defined_bit(w) || self.slots[w] != bits,
                Some(&None) => self.defined_bit(w),
                None => false,
            };
            if differs {
                return SpinCmp::Mismatch(Some(w));
            }
        }
        let mut diffs = Vec::new();
        for (i, s) in frame.slots.iter().enumerate() {
            match *s {
                Some(bits) => {
                    if !self.defined_bit(i) {
                        return SpinCmp::Mismatch(Some(i));
                    }
                    if self.slots[i] != bits {
                        if self.lenient || diffs.len() == crate::affine::MAX_DRIFT_SLOTS {
                            return SpinCmp::Mismatch(Some(i));
                        }
                        diffs.push((i, bits, self.slots[i]));
                    }
                }
                None => {
                    if self.defined_bit(i) {
                        return SpinCmp::Mismatch(Some(i));
                    }
                }
            }
        }
        if diffs.is_empty() {
            SpinCmp::Equal
        } else {
            SpinCmp::Drift(diffs)
        }
    }
}

/// Reusable per-VM buffers: call-argument scratch, phi parallel-copy
/// scratch, and a frame arena recycled across calls and trials.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    pub(crate) call_args: Vec<u64>,
    pub(crate) phi_writes: Vec<(u32, u64)>,
    pub(crate) free_frames: Vec<DFrame>,
}

impl Scratch {
    /// Returns a frame initialized for `fid`: value slots zeroed,
    /// immediates copied in, defined mask cleared.
    pub(crate) fn alloc(&mut self, df: &DecodedFunc, fid: FuncId) -> DFrame {
        let mut fr = self.free_frames.pop().unwrap_or_default();
        let n = df.num_values as usize;
        fr.func = fid;
        fr.num_values = df.num_values;
        fr.slots.clear();
        fr.slots.resize(n, 0);
        fr.slots.extend_from_slice(&df.consts);
        fr.defined.clear();
        fr.defined.resize(n.div_ceil(64), 0);
        fr.lenient = false;
        fr.block = df.entry;
        fr.pc = df.entry_pc;
        fr.call_inst = None;
        fr.ret_slot = SLOT_NONE;
        fr.ret_ty = Type::I64;
        fr
    }

    pub(crate) fn recycle(&mut self, cur: DFrame, stack: Vec<DFrame>) {
        self.free_frames.push(cur);
        self.free_frames.extend(stack);
    }
}

/// Boundary hook for the decoded machine loop — mirrors the reference
/// `Sink` contract (return `true` to halt before the instruction at the
/// current `dyn_count` executes).
pub(crate) trait DSink<O: Observer> {
    /// `true` when `at_boundary` can never halt, snapshot, or otherwise
    /// observe frame state. A passive sink lets the fused machine elide
    /// bookkeeping whose only consumers are snapshots and fault-site
    /// selection (see `DFrame::defined`) on fault-free runs.
    const PASSIVE: bool = false;

    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &DFrame,
        below: &[DFrame],
        state: &ExecState,
        obs: &O,
        dm: &DecodedModule,
    ) -> bool;
}

pub(crate) struct DNoSink;

impl<O: Observer> DSink<O> for DNoSink {
    const PASSIVE: bool = true;

    #[inline(always)]
    fn at_boundary(
        &mut self,
        _: &Memory,
        _: &DFrame,
        _: &[DFrame],
        _: &ExecState,
        _: &O,
        _: &DecodedModule,
    ) -> bool {
        false
    }
}

/// Snapshot capture at every positive multiple of `interval`; produces
/// reference-representation [`Snapshot`]s identical to the tree-walker's.
pub(crate) struct DEveryK<'a, F> {
    pub(crate) interval: u64,
    pub(crate) f: &'a mut F,
}

impl<O: Observer, F: FnMut(Snapshot, &O)> DSink<O> for DEveryK<'_, F> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &DFrame,
        below: &[DFrame],
        state: &ExecState,
        obs: &O,
        dm: &DecodedModule,
    ) -> bool {
        if state.dyn_count != 0 && state.dyn_count.is_multiple_of(self.interval) {
            let mut stack: Vec<Frame> = below
                .iter()
                .map(|f| f.to_frame(&dm.funcs[f.func.index()]))
                .collect();
            stack.push(cur.to_frame(&dm.funcs[cur.func.index()]));
            (self.f)(
                Snapshot {
                    dyn_count: state.dyn_count,
                    check_failures: state.check_failures,
                    mem: mem.clone(),
                    stack,
                },
                obs,
            );
        }
        false
    }
}

/// Convergence detection against golden checkpoints — the decoded
/// counterpart of the reference `ConvergeSink`, comparing flat frames
/// against checkpoint frames without materializing a conversion. Carries
/// the same optional spin-proof core (anchors stored in reference
/// representation via `DFrame::to_frame`, compared via `DFrame::matches`
/// so no conversion happens on the compare path).
pub(crate) struct DConvergeSink<'a, O> {
    candidates: &'a [&'a Snapshot],
    /// The executing (transformed) IR module — consulted by the affine
    /// drift validator (the analysis is IR-level; slot indices in decoded
    /// frames are the same `ValueId` indices).
    module: &'a Module,
    idx: usize,
    pub(crate) spin: Option<SpinCore<O>>,
}

impl<'a, O> DConvergeSink<'a, O> {
    pub(crate) fn new(
        candidates: &'a [&'a Snapshot],
        module: &'a Module,
        spin: Option<SpinCore<O>>,
    ) -> Self {
        DConvergeSink {
            candidates,
            module,
            idx: 0,
            spin,
        }
    }

    fn converges(
        &mut self,
        mem: &Memory,
        cur: &DFrame,
        below: &[DFrame],
        state: &ExecState,
        dm: &DecodedModule,
    ) -> bool {
        while self
            .candidates
            .get(self.idx)
            .is_some_and(|c| c.dyn_count < state.dyn_count)
        {
            self.idx += 1;
        }
        let Some(cand) = self.candidates.get(self.idx) else {
            return false;
        };
        if cand.dyn_count != state.dyn_count {
            return false;
        }
        self.idx += 1;
        if state.fault.is_some() || state.branch_fault_armed.is_some() || state.control_corrupted {
            return false;
        }
        if state.check_failures != cand.check_failures || below.len() + 1 != cand.stack.len() {
            return false;
        }
        let top = &cand.stack[cand.stack.len() - 1];
        if !cur.matches(&dm.funcs[cur.func.index()], top) {
            return false;
        }
        for (fr, cf) in below.iter().zip(&cand.stack[..below.len()]) {
            if !fr.matches(&dm.funcs[fr.func.index()], cf) {
                return false;
            }
        }
        if *mem != cand.mem {
            return false;
        }
        true
    }
}

impl<O: SuffixObserver> DSink<O> for DConvergeSink<'_, O> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &DFrame,
        below: &[DFrame],
        state: &ExecState,
        obs: &O,
        dm: &DecodedModule,
    ) -> bool {
        if let Some(spin) = &self.spin {
            if spin.halt_at() != u64::MAX {
                return state.dyn_count >= spin.halt_at();
            }
        }
        if self.converges(mem, cur, below, state, dm) {
            return true;
        }
        if let Some(spin) = &mut self.spin {
            let module = self.module;
            return spin.on_boundary(
                state,
                obs,
                |a, witness| {
                    let anchor = a.stack();
                    if below.len() + 1 != anchor.len() {
                        return SpinCmp::Mismatch(None);
                    }
                    cur.drift(
                        &dm.funcs[cur.func.index()],
                        &anchor[anchor.len() - 1],
                        witness,
                    )
                },
                |a| {
                    let anchor = a.stack();
                    below
                        .iter()
                        .zip(&anchor[..below.len()])
                        .all(|(fr, af)| fr.matches(&dm.funcs[fr.func.index()], af))
                        && *mem == *a.mem()
                },
                || {
                    let mut stack: Vec<Frame> = below
                        .iter()
                        .map(|f| f.to_frame(&dm.funcs[f.func.index()]))
                        .collect();
                    stack.push(cur.to_frame(&dm.funcs[cur.func.index()]));
                    (mem.clone(), stack)
                },
                |top, deltas, periods| {
                    crate::affine::affine_spin_sound(
                        &module.functions()[top.func.index()],
                        &top.slots,
                        deltas,
                        periods,
                    )
                },
            );
        }
        false
    }
}

/// [`DEveryK`] plus trigger resolution — the decoded counterpart of the
/// reference `RecordResolve` sink: snapshots at interval boundaries
/// (`interval == 0` captures none) and one `Resolution` per pending
/// trigger whose `at_dyn` matches the boundary. Resolution converts the
/// top frame to reference representation and reuses the tree resolver, so
/// the victim enumeration is identical by construction.
pub(crate) struct DRecordResolve<'a, F> {
    pub(crate) interval: u64,
    pub(crate) f: &'a mut F,
    pub(crate) module: &'a Module,
    /// Register fault plans sorted ascending by `at_dyn`.
    pub(crate) triggers: &'a [FaultPlan],
    pub(crate) next: usize,
    /// Resolutions, parallel to `triggers[..next]`.
    pub(crate) out: &'a mut Vec<Resolution>,
}

impl<O: Observer, F: FnMut(Snapshot, &O)> DSink<O> for DRecordResolve<'_, F> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &DFrame,
        below: &[DFrame],
        state: &ExecState,
        obs: &O,
        dm: &DecodedModule,
    ) -> bool {
        while self
            .triggers
            .get(self.next)
            .is_some_and(|p| p.at_dyn == state.dyn_count)
        {
            let func = self.module.function(cur.func);
            let frame = cur.to_frame(&dm.funcs[cur.func.index()]);
            self.out
                .push(resolve_frame(&frame, func, &self.triggers[self.next]));
            self.next += 1;
        }
        if self.interval != 0
            && state.dyn_count != 0
            && state.dyn_count.is_multiple_of(self.interval)
        {
            let mut stack: Vec<Frame> = below
                .iter()
                .map(|f| f.to_frame(&dm.funcs[f.func.index()]))
                .collect();
            stack.push(cur.to_frame(&dm.funcs[cur.func.index()]));
            (self.f)(
                Snapshot {
                    dyn_count: state.dyn_count,
                    check_failures: state.check_failures,
                    mem: mem.clone(),
                    stack,
                },
                obs,
            );
        }
        false
    }
}

/// Register-fault injection into a flat frame: candidate enumeration
/// (ascending defined value indices) and RNG consumption are identical to
/// the reference `ExecState::maybe_inject`.
#[cold]
pub(crate) fn inject<O: Observer>(
    state: &mut ExecState,
    frame: &mut DFrame,
    func: &Function,
    obs: &mut O,
) {
    let (plan, mut inj) = state.fault.take().expect("fault present");
    if plan.kind == FaultKind::BranchTarget {
        state.branch_fault_armed = Some((plan, inj));
        return;
    }
    let mut candidates: Vec<usize> = Vec::new();
    for (w, &word) in frame.defined.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            candidates.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
    if let Some(victim) = inj.choose(&candidates) {
        let vid = ValueId::new(victim);
        let ty = func.value_type(vid);
        let bit = inj.choose_bit(ty);
        let old = frame.slots[victim];
        let new = flip_bit(old, ty, bit);
        frame.slots[victim] = new;
        let rec = InjectionRecord::register(
            plan.at_dyn,
            frame.func,
            vid,
            ty,
            bit,
            old,
            new,
            func.def_inst(vid),
        );
        obs.on_inject(&rec);
        state.injection = Some(rec);
    }
    // If no slot was defined yet the fault hit dead state: masked.
}

/// Fast edge transfer over a materialized copy schedule (parallel-copy
/// semantics: all reads before all writes, via the reusable buffer).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn take_edge<O: Observer>(
    fid: FuncId,
    func: &Function,
    df: &DecodedFunc,
    cur: &mut DFrame,
    edge: u32,
    state: &mut ExecState,
    obs: &mut O,
    scratch: &mut Vec<(u32, u64)>,
) {
    if state.branch_fault_armed.is_some() {
        take_edge_corrupt(fid, func, df, cur, edge, state, obs, scratch);
        return;
    }
    let e = &df.edges[edge as usize];
    if !e.complete {
        transfer_generic(fid, func, df, cur, e.target, obs, scratch);
        return;
    }
    scratch.clear();
    for c in &df.copies[e.copies_start as usize..e.copies_end as usize] {
        let bits = cur.read(c.src);
        obs.on_phi(fid, func, c.phi, c.incoming);
        scratch.push((c.dst, bits));
    }
    for &(slot, bits) in scratch.iter() {
        cur.write(slot, bits);
    }
    cur.block = e.target;
    cur.pc = e.entry_pc;
}

/// A pending branch-target fault corrupts this transfer: the branch lands
/// on a random block of the function instead.
#[cold]
#[allow(clippy::too_many_arguments)]
fn take_edge_corrupt<O: Observer>(
    fid: FuncId,
    func: &Function,
    df: &DecodedFunc,
    cur: &mut DFrame,
    edge: u32,
    state: &mut ExecState,
    obs: &mut O,
    scratch: &mut Vec<(u32, u64)>,
) {
    let (plan, mut inj) = state.branch_fault_armed.take().expect("fault armed");
    let victim = inj.choose_block(func.num_blocks());
    let intended = BlockId::new(df.edges[edge as usize].target as usize);
    cur.lenient = true;
    state.control_corrupted = true;
    let rec = InjectionRecord::branch(plan.at_dyn, fid, intended, BlockId::new(victim));
    obs.on_inject(&rec);
    state.injection = Some(rec);
    transfer_generic(fid, func, df, cur, victim as u32, obs, scratch);
}

/// Generic transfer to an arbitrary block: looks incomings up by
/// predecessor like the reference `take_edge`, tolerating missing edges
/// only after control-flow corruption (same assertion otherwise).
fn transfer_generic<O: Observer>(
    fid: FuncId,
    func: &Function,
    df: &DecodedFunc,
    cur: &mut DFrame,
    target: u32,
    obs: &mut O,
    scratch: &mut Vec<(u32, u64)>,
) {
    let prev = cur.block;
    let blk = &df.blocks[target as usize];
    scratch.clear();
    for p in &df.phis[blk.phi_start as usize..blk.phi_end as usize] {
        let inc = df.phi_incomings[p.inc_start as usize..p.inc_end as usize]
            .iter()
            .find(|(pb, _, _)| *pb == prev);
        let Some(&(_, src, vid)) = inc else {
            // Only reachable after a branch-target fault: the edge does
            // not exist in the CFG, so the phi's "register" keeps its
            // stale value.
            assert!(
                cur.lenient,
                "phi {} in {} of {} lacks incoming for {}",
                p.phi,
                BlockId::new(target as usize),
                func.name,
                BlockId::new(prev as usize)
            );
            continue;
        };
        let bits = cur.read(src);
        obs.on_phi(fid, func, p.phi, vid);
        scratch.push((p.dst, bits));
    }
    for &(slot, bits) in scratch.iter() {
        cur.write(slot, bits);
    }
    cur.block = target;
    cur.pc = blk.start;
}

impl<'m> Vm<'m> {
    /// Builds a flat activation record for `fid` (decoded counterpart of
    /// `Vm::new_frame`): same depth check, arity assertion, argument
    /// canonicalization and `on_enter` ordering.
    pub(crate) fn new_dframe<O: Observer>(
        &mut self,
        fid: FuncId,
        args: &[u64],
        depth: u32,
        obs: &mut O,
    ) -> Result<DFrame, TrapKind> {
        if depth >= self.config.max_call_depth {
            return Err(TrapKind::CallDepth);
        }
        let func = self.module.function(fid);
        assert_eq!(
            args.len(),
            func.params.len(),
            "arity mismatch calling {}",
            func.name
        );
        let df = &self.decoded.funcs[fid.index()];
        let mut frame = self.scratch.alloc(df, fid);
        for (&a, &(slot, ty)) in args.iter().zip(&df.params) {
            let canon = if ty.is_float() {
                a
            } else {
                ty.sign_extend(a) as u64
            };
            frame.write(slot, canon);
        }
        obs.on_enter(fid, func);
        Ok(frame)
    }

    /// Rebuilds the flat frame stack from a snapshot's reference frames;
    /// returns `(current, below)`.
    pub(crate) fn thaw(&mut self, snap: &Snapshot) -> (DFrame, Vec<DFrame>) {
        let mut stack: Vec<DFrame> = Vec::with_capacity(snap.stack.len());
        for frame in &snap.stack {
            let df = &self.decoded.funcs[frame.func.index()];
            let mut fr = self.scratch.alloc(df, frame.func);
            for (i, s) in frame.slots.iter().enumerate() {
                if let Some(bits) = *s {
                    fr.write(i as u32, bits);
                }
            }
            fr.lenient = frame.lenient;
            fr.block = frame.block.index() as u32;
            let b = &df.blocks[fr.block as usize];
            fr.pc = b.start + (frame.ip as u32 - b.phi_count());
            fr.call_inst = frame.call_inst;
            if let Some(ci) = frame.call_inst {
                let func = self.module.function(frame.func);
                if let Some(r) = func.inst(ci).result {
                    fr.ret_slot = r.index() as u32;
                    fr.ret_ty = func.value_type(r);
                }
            }
            stack.push(fr);
        }
        let cur = stack.pop().expect("snapshot has at least one frame");
        (cur, stack)
    }

    pub(crate) fn run_decoded<O: Observer, S: DSink<O>>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        sink: &mut S,
    ) -> RunResult {
        let mut state = ExecState::new(fault);
        let end = match self.new_dframe(entry, args, 0, obs) {
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
            Ok(mut cur) => {
                let mut stack: Vec<DFrame> = Vec::new();
                let end = match self.exec_decoded(&mut cur, &mut stack, &mut state, obs, sink) {
                    Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
                    Ok(MachineEnd::Halted) => unreachable!("run sinks never halt"),
                    Err(kind) => RunEnd::Trap {
                        kind,
                        at_dyn: state.dyn_count,
                    },
                };
                self.scratch.recycle(cur, stack);
                end
            }
        };
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    pub(crate) fn resume_decoded<O: Observer>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> RunResult {
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let (mut cur, mut stack) = self.thaw(snap);
        let end = match self.exec_decoded(&mut cur, &mut stack, &mut state, obs, &mut DNoSink) {
            Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
            Ok(MachineEnd::Halted) => unreachable!("DNoSink never halts"),
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
        };
        self.scratch.recycle(cur, stack);
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    pub(crate) fn resume_converging_decoded<O: SuffixObserver>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let (mut cur, mut stack) = self.thaw(snap);
        let mut sink = DConvergeSink::new(candidates, self.module, spin_core(spin_grid, max_dyn));
        let machine = self.exec_decoded(&mut cur, &mut stack, &mut state, obs, &mut sink);
        self.scratch.recycle(cur, stack);
        finish_converging(
            machine,
            state,
            snap.dyn_count,
            sink.spin.take(),
            obs,
            max_dyn,
        )
    }

    pub(crate) fn run_converging_decoded<O: SuffixObserver>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        let mut sink = DConvergeSink::new(candidates, self.module, spin_core(spin_grid, max_dyn));
        let machine = match self.new_dframe(entry, args, 0, obs) {
            Err(kind) => Err(kind),
            Ok(mut cur) => {
                let mut stack: Vec<DFrame> = Vec::new();
                let machine = self.exec_decoded(&mut cur, &mut stack, &mut state, obs, &mut sink);
                self.scratch.recycle(cur, stack);
                machine
            }
        };
        finish_converging(machine, state, 0, sink.spin.take(), obs, max_dyn)
    }

    /// The decoded machine loop. Boundary order matches the reference
    /// loop exactly: sink (may halt) → fault trigger → watchdog → count →
    /// observer → execute.
    fn exec_decoded<O: Observer, S: DSink<O>>(
        &mut self,
        cur: &mut DFrame,
        stack: &mut Vec<DFrame>,
        state: &mut ExecState,
        obs: &mut O,
        sink: &mut S,
    ) -> Result<MachineEnd, TrapKind> {
        let Vm {
            module,
            mem,
            config,
            decoded,
            scratch,
            profiler,
        } = self;
        let module: &Module = module;
        let dm: &DecodedModule = decoded;
        let max_dyn = config.max_dyn_insts;
        let max_depth = config.max_call_depth;
        let checks_count_only = config.checks_count_only;
        // The trigger boundary, hoisted out of the per-instruction Option
        // matching; `u64::MAX` once the fault is consumed (or absent).
        let mut trigger = match &state.fault {
            Some((plan, _)) => plan.at_dyn,
            None => u64::MAX,
        };

        'frames: loop {
            let fid = cur.func;
            let func = module.function(fid);
            let df = &dm.funcs[fid.index()];
            loop {
                let blk = df.blocks[cur.block as usize];
                while cur.pc < blk.end {
                    if sink.at_boundary(mem, cur, stack, state, obs, dm) {
                        return Ok(MachineEnd::Halted);
                    }
                    if state.dyn_count == trigger {
                        inject(state, cur, func, obs);
                        trigger = u64::MAX;
                    }
                    if state.dyn_count >= max_dyn {
                        return Err(TrapKind::Watchdog);
                    }
                    state.dyn_count += 1;
                    let d = df.code[cur.pc as usize];
                    obs.on_exec(fid, func, d.inst);
                    if let Some(p) = profiler.as_deref_mut() {
                        p.record(OpClass::of_dkind(&d.kind));
                    }
                    cur.pc += 1;

                    match d.kind {
                        DKind::BinI { op, ty, a, b } => {
                            let av = cur.read(a) as i64;
                            let bv = cur.read(b) as i64;
                            let mask = if ty.bits() == 64 {
                                u64::MAX
                            } else {
                                (1u64 << ty.bits()) - 1
                            };
                            let ua = (av as u64) & mask;
                            let ub = (bv as u64) & mask;
                            let r: i64 = match op {
                                BinOp::Add => av.wrapping_add(bv),
                                BinOp::Sub => av.wrapping_sub(bv),
                                BinOp::Mul => av.wrapping_mul(bv),
                                BinOp::SDiv => {
                                    if bv == 0 {
                                        return Err(TrapKind::DivByZero);
                                    }
                                    av.wrapping_div(bv)
                                }
                                BinOp::SRem => {
                                    if bv == 0 {
                                        return Err(TrapKind::DivByZero);
                                    }
                                    av.wrapping_rem(bv)
                                }
                                BinOp::UDiv => {
                                    if ub == 0 {
                                        return Err(TrapKind::DivByZero);
                                    }
                                    (ua / ub) as i64
                                }
                                BinOp::URem => {
                                    if ub == 0 {
                                        return Err(TrapKind::DivByZero);
                                    }
                                    (ua % ub) as i64
                                }
                                BinOp::And => av & bv,
                                BinOp::Or => av | bv,
                                BinOp::Xor => av ^ bv,
                                BinOp::Shl => {
                                    let amt = (bv as u64) % ty.bits() as u64;
                                    av.wrapping_shl(amt as u32)
                                }
                                BinOp::LShr => {
                                    let amt = (bv as u64) % ty.bits() as u64;
                                    (ua >> amt) as i64
                                }
                                BinOp::AShr => {
                                    let amt = (bv as u64) % ty.bits() as u64;
                                    av.wrapping_shr(amt as u32)
                                }
                                _ => unreachable!("int op"),
                            };
                            let bits = ty.canon(r) as u64;
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::BinF { op, a, b } => {
                            let av = f64::from_bits(cur.read(a));
                            let bv = f64::from_bits(cur.read(b));
                            let r = match op {
                                BinOp::FAdd => av + bv,
                                BinOp::FSub => av - bv,
                                BinOp::FMul => av * bv,
                                BinOp::FDiv => av / bv,
                                _ => unreachable!("float op"),
                            };
                            let bits = r.to_bits();
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Un { op, a } => {
                            let av = f64::from_bits(cur.read(a));
                            let r = match op {
                                UnOp::FSqrt => av.sqrt(),
                                UnOp::FAbs => av.abs(),
                                UnOp::FFloor => av.floor(),
                                UnOp::FNeg => -av,
                            };
                            let bits = r.to_bits();
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Icmp { pred, ty, a, b } => {
                            let av = cur.read(a) as i64;
                            let bv = cur.read(b) as i64;
                            let mask = if ty.bits() == 64 {
                                u64::MAX
                            } else {
                                (1u64 << ty.bits()) - 1
                            };
                            let (ua, ub) = ((av as u64) & mask, (bv as u64) & mask);
                            let r = match pred {
                                IntCC::Eq => av == bv,
                                IntCC::Ne => av != bv,
                                IntCC::Slt => av < bv,
                                IntCC::Sle => av <= bv,
                                IntCC::Sgt => av > bv,
                                IntCC::Sge => av >= bv,
                                IntCC::Ult => ua < ub,
                                IntCC::Ule => ua <= ub,
                                IntCC::Ugt => ua > ub,
                                IntCC::Uge => ua >= ub,
                            };
                            let bits = r as u64;
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Fcmp { pred, a, b } => {
                            let av = f64::from_bits(cur.read(a));
                            let bv = f64::from_bits(cur.read(b));
                            let r = match pred {
                                FloatCC::Eq => av == bv,
                                FloatCC::Ne => av != bv,
                                FloatCC::Lt => av < bv,
                                FloatCC::Le => av <= bv,
                                FloatCC::Gt => av > bv,
                                FloatCC::Ge => av >= bv,
                            };
                            let bits = r as u64;
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Cast { kind, src, a } => {
                            let av = cur.read(a);
                            let bits = match kind {
                                CastKind::Trunc => d.ty.sign_extend(av) as u64,
                                CastKind::SExt => av, // canonical form is already extended
                                CastKind::ZExt => {
                                    let mask = if src.bits() == 64 {
                                        u64::MAX
                                    } else {
                                        (1u64 << src.bits()) - 1
                                    };
                                    av & mask
                                }
                                CastKind::FpToSi => {
                                    let f = f64::from_bits(av);
                                    d.ty.canon(f as i64) as u64 // saturating in Rust
                                }
                                CastKind::SiToFp => ((av as i64) as f64).to_bits(),
                            };
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Select { c, t, f } => {
                            let bits = if cur.read(c) & 1 == 1 {
                                cur.read(t)
                            } else {
                                cur.read(f)
                            };
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Load { addr } => {
                            let a = cur.read(addr) as i64;
                            let bits = mem.load(a, d.ty)?;
                            cur.write(d.result, bits);
                            obs.on_result(fid, func, d.inst, d.ty, bits);
                        }
                        DKind::Store { addr, val, vty } => {
                            let a = cur.read(addr) as i64;
                            let v = cur.read(val);
                            mem.store(a, vty, v)?;
                        }
                        DKind::Check { cond, kind } => {
                            let c = cur.read(cond);
                            if c & 1 == 0 {
                                obs.on_check_fail(fid, func, d.inst);
                                if checks_count_only {
                                    state.check_failures += 1;
                                } else {
                                    return Err(TrapKind::SwDetect(kind));
                                }
                            }
                        }
                        DKind::Call {
                            callee,
                            args_start,
                            args_len,
                        } => {
                            scratch.call_args.clear();
                            for &a in
                                &df.call_args[args_start as usize..(args_start + args_len) as usize]
                            {
                                scratch.call_args.push(cur.read(a));
                            }
                            let depth = stack.len() as u32 + 1;
                            if depth >= max_depth {
                                return Err(TrapKind::CallDepth);
                            }
                            let cfunc = module.function(callee);
                            let dfc = &dm.funcs[callee.index()];
                            assert_eq!(
                                scratch.call_args.len(),
                                dfc.params.len(),
                                "arity mismatch calling {}",
                                cfunc.name
                            );
                            let mut callee_frame = scratch.free_frames.pop().unwrap_or_default();
                            {
                                let n = dfc.num_values as usize;
                                callee_frame.func = callee;
                                callee_frame.num_values = dfc.num_values;
                                callee_frame.slots.clear();
                                callee_frame.slots.resize(n, 0);
                                callee_frame.slots.extend_from_slice(&dfc.consts);
                                callee_frame.defined.clear();
                                callee_frame.defined.resize(n.div_ceil(64), 0);
                                callee_frame.lenient = false;
                                callee_frame.block = dfc.entry;
                                callee_frame.pc = dfc.entry_pc;
                                callee_frame.call_inst = None;
                                callee_frame.ret_slot = SLOT_NONE;
                                callee_frame.ret_ty = Type::I64;
                            }
                            for (&a, &(slot, ty)) in scratch.call_args.iter().zip(&dfc.params) {
                                let canon = if ty.is_float() {
                                    a
                                } else {
                                    ty.sign_extend(a) as u64
                                };
                                callee_frame.write(slot, canon);
                            }
                            obs.on_enter(callee, cfunc);
                            cur.call_inst = Some(d.inst);
                            cur.ret_slot = d.result;
                            cur.ret_ty = d.ty;
                            stack.push(std::mem::replace(cur, callee_frame));
                            continue 'frames;
                        }
                    }
                }

                // Terminator boundary.
                if sink.at_boundary(mem, cur, stack, state, obs, dm) {
                    return Ok(MachineEnd::Halted);
                }
                if state.dyn_count == trigger {
                    inject(state, cur, func, obs);
                    trigger = u64::MAX;
                }
                if state.dyn_count >= max_dyn {
                    return Err(TrapKind::Watchdog);
                }
                state.dyn_count += 1;
                obs.on_term(fid, func, BlockId::new(cur.block as usize));
                if let Some(p) = profiler.as_deref_mut() {
                    p.record(OpClass::of_dterm(&blk.term));
                }
                match blk.term {
                    DTerm::Br { edge } => {
                        take_edge(
                            fid,
                            func,
                            df,
                            cur,
                            edge,
                            state,
                            obs,
                            &mut scratch.phi_writes,
                        );
                    }
                    DTerm::CondBr {
                        cond,
                        then_edge,
                        else_edge,
                    } => {
                        let c = cur.read(cond);
                        let e = if c & 1 == 1 { then_edge } else { else_edge };
                        take_edge(fid, func, df, cur, e, state, obs, &mut scratch.phi_writes);
                    }
                    DTerm::Ret(v) => {
                        let ret = v.map(|o| cur.read(o));
                        obs.on_exit(fid);
                        let Some(caller) = stack.pop() else {
                            return Ok(MachineEnd::Ret(ret));
                        };
                        scratch.free_frames.push(std::mem::replace(cur, caller));
                        let caller_func = module.function(cur.func);
                        let i = cur.call_inst.take().expect("returning to a call site");
                        let rs = cur.ret_slot;
                        if rs != SLOT_NONE {
                            let bits = ret.expect("verified call returns a value");
                            cur.write(rs, bits);
                            obs.on_result(cur.func, caller_func, i, cur.ret_ty, bits);
                        }
                        continue 'frames;
                    }
                    DTerm::Missing => panic!("verified function has terminators"),
                }
            }
        }
    }
}
