//! Dual-issue, in-order, stall-on-use timing model.
//!
//! The paper measures performance overhead on a gem5 2-issue ARM model
//! (Table II). We reproduce the *relative* behaviour with an in-order
//! dual-issue pipeline: each dynamic instruction issues at the latest of
//!
//! 1. the current issue cycle (instructions issue in program order, at
//!    most `issue_width` per cycle), and
//! 2. the ready times of its operands (stall-on-use),
//!
//! and completes after its opcode latency. Total cycles are the largest
//! completion time.
//!
//! Why in-order rather than a full ROB model: an idealized out-of-order
//! window overlaps independent loop iterations so perfectly that the
//! baseline saturates the issue width, making every added instruction
//! cost a slot — cycle overhead would then equal instruction-count
//! overhead, which is *not* what the paper (or real hardware) observes.
//! The effect the paper leans on is that *duplicated producer chains are
//! independent of the primary chain* and are interleaved next to it, so
//! they fill the load-use and long-latency stall slots of the baseline;
//! an in-order stall-on-use pipeline exposes exactly those bubbles.
//! Selective duplication therefore costs far less than its instruction
//! count suggests, while full duplication exhausts the spare slots and
//! approaches the throughput bound — the Fig. 12 shape.

use crate::interp::Observer;
use softft_ir::function::{Function, ValueKind};
use softft_ir::inst::{BinOp, Op, UnOp};
use softft_ir::{BlockId, FuncId, InstId, Type, ValueId};
use std::collections::HashMap;

/// Core parameters (Table II, scaled to the model).
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Instructions issued per cycle (paper: 2).
    pub issue_width: u32,
    /// Reorder-buffer entries (paper: 192).
    pub rob_size: usize,
    /// L1 hit latency charged to loads.
    pub load_latency: u32,
    /// Latency of integer multiply.
    pub mul_latency: u32,
    /// Latency of integer divide/remainder.
    pub div_latency: u32,
    /// Latency of simple float ops (add/sub/mul/compare).
    pub fp_latency: u32,
    /// Latency of float divide/sqrt.
    pub fdiv_latency: u32,
    /// Fixed cycles charged per function call (frame setup).
    pub call_overhead: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            issue_width: 2,
            rob_size: 192,
            load_latency: 1,
            mul_latency: 1,
            div_latency: 8,
            fp_latency: 2,
            fdiv_latency: 12,
            call_overhead: 4,
        }
    }
}

/// Execution-port classes of a dual-issue core in the Cortex-A8 mould:
/// two general slots per cycle, but only one load/store pipe and one
/// multiply/FP pipe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Port {
    /// The single load/store pipe.
    Memory,
    /// The single multiply / divide / floating-point pipe.
    MulFp,
    /// Simple ALU / branch work (bounded only by the issue width).
    Simple,
}

impl CoreConfig {
    /// Latency in cycles of one instruction.
    pub fn latency(&self, op: &Op) -> u32 {
        match op {
            Op::Bin { op, .. } => match op {
                BinOp::Mul => self.mul_latency,
                BinOp::SDiv | BinOp::SRem | BinOp::UDiv | BinOp::URem => self.div_latency,
                BinOp::FAdd | BinOp::FSub => self.fp_latency,
                BinOp::FMul => self.fp_latency,
                BinOp::FDiv => self.fdiv_latency,
                _ => 1,
            },
            Op::Un { op, .. } => match op {
                UnOp::FSqrt => self.fdiv_latency,
                _ => self.fp_latency,
            },
            Op::Fcmp { .. } => self.fp_latency,
            Op::Load { .. } => self.load_latency,
            Op::Store { .. } => 1,
            Op::Call { .. } => self.call_overhead,
            _ => 1,
        }
    }

    /// Execution port used by one instruction.
    pub fn port(&self, op: &Op) -> Port {
        match op {
            Op::Load { .. } | Op::Store { .. } => Port::Memory,
            Op::Bin {
                op:
                    BinOp::Mul
                    | BinOp::SDiv
                    | BinOp::SRem
                    | BinOp::UDiv
                    | BinOp::URem
                    | BinOp::FAdd
                    | BinOp::FSub
                    | BinOp::FMul
                    | BinOp::FDiv,
                ..
            } => Port::MulFp,
            Op::Un { .. } | Op::Fcmp { .. } => Port::MulFp,
            _ => Port::Simple,
        }
    }
}

/// A per-frame map of value readiness times.
#[derive(Debug, Default)]
struct TimingFrame {
    ready: HashMap<ValueId, u64>,
}

/// The timing model, driven as a VM [`Observer`].
///
/// Attach it to a fault-free run and read [`TimingModel::cycles`]
/// afterwards.
#[derive(Debug)]
pub struct TimingModel {
    cfg: CoreConfig,
    frames: Vec<TimingFrame>,
    /// Sequence number of the next dynamic instruction.
    seq: u64,
    /// Cycle currently being filled with issue slots.
    cur_cycle: u64,
    /// Slots already used in `cur_cycle`.
    slots_used: u32,
    /// Memory-pipe slot used in `cur_cycle`.
    mem_used: bool,
    /// Multiply/FP-pipe slot used in `cur_cycle`.
    mulfp_used: bool,
    /// Pending call-result value (ready once the callee returns).
    call_stack: Vec<Option<(usize, ValueId)>>,
    max_done: u64,
}

impl TimingModel {
    /// Creates a model with `cfg`.
    pub fn new(cfg: CoreConfig) -> Self {
        TimingModel {
            cfg,
            frames: Vec::new(),
            seq: 0,
            cur_cycle: 0,
            slots_used: 0,
            mem_used: false,
            mulfp_used: false,
            call_stack: Vec::new(),
            max_done: 0,
        }
    }

    /// Total cycles accumulated so far (completion of the latest
    /// instruction).
    pub fn cycles(&self) -> u64 {
        self.max_done.max(self.cur_cycle)
    }

    /// Dynamic instructions timed.
    pub fn instructions(&self) -> u64 {
        self.seq
    }

    /// Instructions per cycle of the timed run.
    pub fn ipc(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.seq as f64 / self.cycles() as f64
        }
    }

    fn ready_of(&self, frame: usize, func: &Function, v: ValueId) -> u64 {
        match func.value(v).kind {
            ValueKind::Const(_) => 0,
            _ => self
                .frames
                .get(frame)
                .and_then(|f| f.ready.get(&v))
                .copied()
                .unwrap_or(0),
        }
    }

    /// Times one dynamic instruction with its operands ready at
    /// `deps_ready`, returning its completion time. In-order issue: an
    /// instruction whose operands are not ready — or whose execution
    /// port is occupied — stalls the pipeline (younger instructions
    /// cannot bypass it).
    fn issue(&mut self, deps_ready: u64, latency: u32, port: Port) -> u64 {
        let advance = |this: &mut Self| {
            this.cur_cycle += 1;
            this.slots_used = 0;
            this.mem_used = false;
            this.mulfp_used = false;
        };
        if deps_ready > self.cur_cycle {
            self.cur_cycle = deps_ready;
            self.slots_used = 0;
            self.mem_used = false;
            self.mulfp_used = false;
        }
        if self.slots_used >= self.cfg.issue_width {
            advance(self);
        }
        match port {
            Port::Memory => {
                if self.mem_used {
                    advance(self);
                }
                self.mem_used = true;
            }
            Port::MulFp => {
                if self.mulfp_used {
                    advance(self);
                }
                self.mulfp_used = true;
            }
            Port::Simple => {}
        }
        self.slots_used += 1;
        let done = self.cur_cycle + latency as u64;
        self.seq += 1;
        self.max_done = self.max_done.max(done);
        done
    }
}

impl Observer for TimingModel {
    fn on_enter(&mut self, _func: FuncId, f: &Function) {
        let mut tf = TimingFrame::default();
        // Parameter readiness: when the caller's args were ready — the
        // call instruction's completion propagates via the call latency;
        // approximate with the current retire front.
        for i in 0..f.params.len() {
            tf.ready.insert(f.param(i), self.cur_cycle);
        }
        self.frames.push(tf);
    }

    fn on_exit(&mut self, _func: FuncId) {
        self.frames.pop();
        if let Some(Some((depth, result))) = self.call_stack.last().copied() {
            if depth == self.frames.len() {
                // The call completed: its result is ready at the retire front.
                self.call_stack.pop();
                if let Some(tf) = self.frames.last_mut() {
                    tf.ready.insert(result, self.cur_cycle);
                }
            }
        }
    }

    fn on_exec(&mut self, _func: FuncId, f: &Function, inst: InstId) {
        let data = f.inst(inst);
        // Check instructions macro-fuse with the comparison producing
        // their condition (cmp + never-taken-branch fusion): they occupy
        // no issue slot of their own and add no latency.
        if matches!(data.op, Op::Check { .. }) {
            self.seq += 1;
            return;
        }
        let frame = self.frames.len() - 1;
        let mut deps = 0u64;
        let mut ops = Vec::new();
        data.op.operands(&mut ops);
        for v in ops {
            deps = deps.max(self.ready_of(frame, f, v));
        }
        let lat = self.cfg.latency(&data.op);
        let port = self.cfg.port(&data.op);
        let done = self.issue(deps, lat, port);
        if let Some(r) = data.result {
            self.frames[frame].ready.insert(r, done);
        }
        if let Op::Call { .. } = data.op {
            if let Some(r) = data.result {
                self.call_stack.push(Some((frame, r)));
            } else {
                self.call_stack.push(None);
            }
        }
    }

    fn on_result(&mut self, _func: FuncId, _f: &Function, _inst: InstId, _ty: Type, _bits: u64) {}

    fn on_phi(&mut self, _func: FuncId, f: &Function, inst: InstId, incoming: ValueId) {
        let frame = self.frames.len() - 1;
        let ready = self.ready_of(frame, f, incoming);
        if let Some(r) = f.inst(inst).result {
            self.frames[frame].ready.insert(r, ready);
        }
    }

    fn on_term(&mut self, _func: FuncId, f: &Function, block: BlockId) {
        let frame = self.frames.len() - 1;
        let deps = f
            .block(block)
            .term
            .as_ref()
            .and_then(|t| t.cond())
            .map(|c| self.ready_of(frame, f, c))
            .unwrap_or(0);
        self.issue(deps, 1, Port::Simple);
        // Phi results in the successor become ready at the branch point;
        // model them as ready at the retire front (they are register
        // renames, not execution).
        let _ = block;
    }
}

impl TimingModel {
    /// Registers phi results of `block` in the current frame as ready at
    /// the given time. Called by runners that want precise phi timing;
    /// by default phis inherit readiness 0 which slightly favours loops
    /// equally across techniques.
    pub fn note_phi_ready(&mut self, f: &Function, block: BlockId, at: u64) {
        let Some(frame) = self.frames.last_mut() else {
            return;
        };
        for &i in &f.block(block).insts {
            let inst = f.inst(i);
            if !inst.op.is_phi() {
                break;
            }
            if let Some(r) = inst.result {
                frame.ready.insert(r, at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{NoopObserver, Vm, VmConfig};
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::Module;

    fn timed_cycles(m: &Module) -> (u64, u64) {
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(m, VmConfig::default());
        let mut t = TimingModel::new(CoreConfig::default());
        let r = vm.run(main, &[], &mut t, None);
        assert!(r.completed());
        (t.cycles(), t.instructions())
    }

    fn chain_module(n: i64, independent: bool) -> Module {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let one = d.i64c(1);
            d.set(acc, one);
            let (s, e) = (d.i64c(0), d.i64c(n));
            d.for_range(s, e, |d, i| {
                if independent {
                    // Independent long-latency work: results discarded.
                    let _ = d.sdiv(i, one);
                } else {
                    // Serial long-latency dependence chain through acc.
                    let a = d.get(acc);
                    let a2 = d.sdiv(a, one);
                    d.set(acc, a2);
                }
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        m
    }

    #[test]
    fn dependent_chain_slower_than_independent_work() {
        let (dep_cycles, dep_insts) = timed_cycles(&chain_module(2000, false));
        let (ind_cycles, ind_insts) = timed_cycles(&chain_module(2000, true));
        // Same instruction count shape, very different cycles.
        assert!((dep_insts as i64 - ind_insts as i64).abs() < 10);
        assert!(
            dep_cycles > ind_cycles,
            "serial chain {dep_cycles} should exceed independent {ind_cycles}"
        );
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let (cycles, insts) = timed_cycles(&chain_module(5000, true));
        let ipc = insts as f64 / cycles as f64;
        assert!(ipc <= 2.0 + 1e-9, "ipc {ipc} exceeds issue width");
        assert!(ipc > 0.5, "ipc {ipc} suspiciously low for independent work");
    }

    #[test]
    fn latencies_match_config() {
        let cfg = CoreConfig::default();
        let a = ValueId::new(0);
        assert_eq!(
            cfg.latency(&Op::Bin {
                op: BinOp::Add,
                lhs: a,
                rhs: a
            }),
            1
        );
        assert_eq!(
            cfg.latency(&Op::Bin {
                op: BinOp::Mul,
                lhs: a,
                rhs: a
            }),
            1
        );
        assert_eq!(
            cfg.latency(&Op::Bin {
                op: BinOp::SDiv,
                lhs: a,
                rhs: a
            }),
            8
        );
        assert_eq!(cfg.latency(&Op::Load { addr: a }), 1);
        assert_eq!(
            cfg.latency(&Op::Un {
                op: UnOp::FSqrt,
                arg: a
            }),
            12
        );
        assert_eq!(cfg.port(&Op::Load { addr: a }), Port::Memory);
        assert_eq!(
            cfg.port(&Op::Bin {
                op: BinOp::Mul,
                lhs: a,
                rhs: a
            }),
            Port::MulFp
        );
        assert_eq!(
            cfg.port(&Op::Bin {
                op: BinOp::Xor,
                lhs: a,
                rhs: a
            }),
            Port::Simple
        );
    }

    #[test]
    fn cycles_monotone_in_instruction_count() {
        let (c1, _) = timed_cycles(&chain_module(100, false));
        let (c2, _) = timed_cycles(&chain_module(200, false));
        assert!(c2 > c1);
    }

    #[test]
    fn empty_model_reports_zero() {
        let t = TimingModel::new(CoreConfig::default());
        assert_eq!(t.cycles(), 0);
        assert_eq!(t.instructions(), 0);
        assert_eq!(t.ipc(), 0.0);
    }

    #[test]
    fn timing_observer_composes_with_plain_run() {
        // The same module must produce identical functional results with
        // and without the timing observer attached.
        let m = chain_module(500, false);
        let main = m.function_by_name("main").unwrap();
        let r1 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);
        let mut t = TimingModel::new(CoreConfig::default());
        let r2 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut t, None);
        assert_eq!(r1.end, r2.end);
        assert_eq!(r1.dyn_insts, r2.dyn_insts);
        assert_eq!(t.instructions(), r1.dyn_insts);
    }
}
