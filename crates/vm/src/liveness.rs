//! Static def-use/liveness index for fault-space pruning (DETOx-style).
//!
//! Built once per module from the IR alone, this index answers one
//! question about a resolved register fault: *can the flipped bit ever be
//! observed?* Two sound "no" cases are recognized:
//!
//! * **dead** — on every path from the injection point the victim slot is
//!   redefined (its SSA value's defining instruction re-executes) before
//!   any instruction reads it;
//! * **masked** — every read of the victim narrows it below the flipped
//!   bit: the only width-sensitive reader in the IR is `Trunc`, which
//!   reads bits `[0, result_width)` of the canonical (sign-extended)
//!   representation, and [`crate::fault::flip_bit`] on bit `b` only
//!   changes stored bits at positions `>= b`. All other readers are
//!   treated as full-width.
//!
//! Either way the trial's execution is bit-for-bit the golden run, so a
//! campaign may skip it and synthesize the golden record (the injection
//! record itself is still produced — see `interp::Resolution`). The
//! analysis is conservative: a `false` answer never mis-prunes, it only
//! runs the trial for real.

use softft_ir::inst::{CastKind, Op, Term};
use softft_ir::{BlockId, FuncId, Function, Module, ValueId};

/// Per-function liveness facts.
struct FuncLiveness {
    /// Bitset words per block row.
    words: usize,
    /// `live_out[b * words ..][..words]`: values live at the end of block
    /// `b` — including values flowing into successor phis along any
    /// outgoing edge.
    live_out: Vec<u64>,
    /// Maximum number of low bits any reader of the value observes: 64
    /// for ordinary uses, the result width for `Trunc` uses, 0 when the
    /// value is never read.
    read_width: Vec<u32>,
}

/// Module-wide liveness index; see the module docs.
pub struct ModuleLiveness {
    funcs: Vec<FuncLiveness>,
}

#[inline]
fn set_bit(row: &mut [u64], v: ValueId) {
    row[v.index() / 64] |= 1 << (v.index() % 64);
}

#[inline]
fn get_bit(row: &[u64], v: ValueId) -> bool {
    row[v.index() / 64] & (1 << (v.index() % 64)) != 0
}

/// `dst |= src`, returning whether `dst` changed.
fn or_into(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src) {
        let n = *d | *s;
        changed |= n != *d;
        *d = n;
    }
    changed
}

fn compute_func(func: &Function) -> FuncLiveness {
    let nv = func.num_values();
    let nb = func.num_blocks();
    let words = nv.div_ceil(64).max(1);
    let row = |sets: &[u64], b: usize| sets[b * words..(b + 1) * words].to_vec();

    // Per-block upward-exposed uses / defs. Phi results are defined at
    // block entry (the edge transfer writes them), so they are pre-seeded
    // as defined and their operands are charged to the incoming edge, not
    // to this block.
    let mut ue_use = vec![0u64; nb * words];
    let mut def = vec![0u64; nb * words];
    let mut phidef = vec![0u64; nb * words];
    let mut read_width = vec![0u32; nv];
    let mut ops: Vec<ValueId> = Vec::new();
    for b in func.block_ids() {
        let bi = b.index();
        let data = func.block(b);
        let mut defined = vec![0u64; words];
        for &iid in &data.insts {
            let inst = func.inst(iid);
            if inst.op.is_phi() {
                if let Some(r) = inst.result {
                    set_bit(&mut defined, r);
                    set_bit(&mut def[bi * words..(bi + 1) * words], r);
                    set_bit(&mut phidef[bi * words..(bi + 1) * words], r);
                }
                // Incoming phi operands are uses on the predecessor edge;
                // width-wise they flow whole into the phi slot.
                ops.clear();
                inst.op.operands(&mut ops);
                for &v in &ops {
                    read_width[v.index()] = read_width[v.index()].max(64);
                }
                continue;
            }
            ops.clear();
            inst.op.operands(&mut ops);
            let width = match &inst.op {
                Op::Cast {
                    kind: CastKind::Trunc,
                    ..
                } => func
                    .value_type(inst.result.expect("trunc produces a result"))
                    .bits(),
                _ => 64,
            };
            for &v in &ops {
                read_width[v.index()] = read_width[v.index()].max(width);
                if !get_bit(&defined, v) {
                    set_bit(&mut ue_use[bi * words..(bi + 1) * words], v);
                }
            }
            if let Some(r) = inst.result {
                set_bit(&mut defined, r);
                set_bit(&mut def[bi * words..(bi + 1) * words], r);
            }
        }
        if let Some(term) = &data.term {
            let tv = match term {
                Term::CondBr { cond, .. } => Some(*cond),
                Term::Ret(v) => *v,
                Term::Br(_) => None,
            };
            if let Some(v) = tv {
                read_width[v.index()] = read_width[v.index()].max(64);
                if !get_bit(&defined, v) {
                    set_bit(&mut ue_use[bi * words..(bi + 1) * words], v);
                }
            }
        }
    }

    // Backward fixpoint:
    //   live_in[S]  = ue_use[S] | (live_out[S] & !def[S])
    //   live_out[B] = U_S ((live_in[S] & !phidef[S]) | incomings on B->S)
    let mut live_in = vec![0u64; nb * words];
    let mut live_out = vec![0u64; nb * words];
    let mut edge_use: Vec<u64> = vec![0u64; words];
    loop {
        let mut changed = false;
        for b in func.block_ids().collect::<Vec<_>>().into_iter().rev() {
            let bi = b.index();
            if let Some(term) = &func.block(b).term {
                for s in term.successors() {
                    let si = s.index();
                    edge_use.iter_mut().for_each(|w| *w = 0);
                    for &iid in &func.block(s).insts {
                        let inst = func.inst(iid);
                        if !inst.op.is_phi() {
                            break;
                        }
                        if let Op::Phi { incomings } = &inst.op {
                            for &(pred, v) in incomings {
                                if pred == b {
                                    set_bit(&mut edge_use, v);
                                }
                            }
                        }
                    }
                    let mut flow = row(&live_in, si);
                    for (f, p) in flow.iter_mut().zip(&phidef[si * words..(si + 1) * words]) {
                        *f &= !*p;
                    }
                    or_into(&mut flow, &edge_use);
                    changed |= or_into(&mut live_out[bi * words..(bi + 1) * words], &flow);
                }
            }
            let mut inn = row(&live_out, bi);
            for (i, d) in inn.iter_mut().zip(&def[bi * words..(bi + 1) * words]) {
                *i &= !*d;
            }
            or_into(&mut inn, &ue_use[bi * words..(bi + 1) * words]);
            changed |= or_into(&mut live_in[bi * words..(bi + 1) * words], &inn);
        }
        if !changed {
            break;
        }
    }

    FuncLiveness {
        words,
        live_out,
        read_width,
    }
}

impl ModuleLiveness {
    /// Builds the index for every function of `module`. Pure static
    /// analysis — nothing is executed.
    pub fn compute(module: &Module) -> ModuleLiveness {
        ModuleLiveness {
            funcs: module.functions().iter().map(compute_func).collect(),
        }
    }

    /// `true` when flipping `bit` of value `v`'s slot immediately before
    /// the instruction at `(block, ip)` of function `fid` provably cannot
    /// be observed by any execution: the bit is above every reader's
    /// width, or the slot is redefined before any read on every path.
    ///
    /// `ip` indexes `block`'s instruction list (phi prefix included) and
    /// must point at or past the first non-phi instruction, matching
    /// `Frame::ip` at a dynamic-instruction boundary; `ip == insts.len()`
    /// means the terminator executes next.
    pub fn dead_or_masked(
        &self,
        module: &Module,
        fid: FuncId,
        block: BlockId,
        ip: usize,
        v: ValueId,
        bit: u32,
    ) -> bool {
        let fl = &self.funcs[fid.index()];
        if bit >= fl.read_width[v.index()] {
            return true;
        }
        let func = module.function(fid);
        let data = func.block(block);
        let mut ops: Vec<ValueId> = Vec::new();
        for &iid in data.insts.iter().skip(ip) {
            let inst = func.inst(iid);
            ops.clear();
            inst.op.operands(&mut ops);
            if ops.contains(&v) {
                return false;
            }
            if inst.result == Some(v) {
                return true;
            }
        }
        if let Some(term) = &data.term {
            match term {
                Term::CondBr { cond, .. } if *cond == v => return false,
                Term::Ret(Some(r)) if *r == v => return false,
                _ => {}
            }
        }
        let bi = block.index();
        !get_bit(&fl.live_out[bi * fl.words..(bi + 1) * fl.words], v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::Type;

    fn module_with(build: impl FnOnce(&mut FunctionDsl)) -> (Module, FuncId) {
        let mut m = Module::new("liveness-test");
        let f = FunctionDsl::build("main", &[Type::I64], Some(Type::I64), build);
        let id = m.add_function(f);
        (m, id)
    }

    #[test]
    fn straight_line_dead_and_live() {
        // v = p + 1; w = p + 2; ret w  -- v is never read: every bit dead.
        let mut captured = None;
        let (m, fid) = module_with(|d| {
            let p = d.param(0);
            let one = d.i64c(1);
            let two = d.i64c(2);
            let v = d.add(p, one);
            let w = d.add(p, two);
            captured = Some((v, w));
            d.ret(Some(w));
        });
        let (v, w) = captured.unwrap();
        let lv = ModuleLiveness::compute(&m);
        let func = m.function(fid);
        let entry = func.entry();
        // At ip 0 (before anything ran) the analysis still sees v's
        // definition ahead; ask at the end of the block instead.
        let end = func.block(entry).insts.len();
        assert!(lv.dead_or_masked(&m, fid, entry, end, v, 0));
        assert!(!lv.dead_or_masked(&m, fid, entry, end, w, 0));
    }

    #[test]
    fn trunc_masks_high_bits() {
        // w = trunc8(v); ret sext(w) -- bits 8..64 of v are masked, bits
        // 0..8 are not.
        let mut captured = None;
        let (m, fid) = module_with(|d| {
            let p = d.param(0);
            let one = d.i64c(1);
            let v = d.add(p, one);
            let w = d.trunc(v, Type::I8);
            let x = d.sext(w, Type::I64);
            captured = Some(v);
            d.ret(Some(x));
        });
        let v = captured.unwrap();
        let lv = ModuleLiveness::compute(&m);
        let func = m.function(fid);
        let entry = func.entry();
        // Query right after v's definition (param0+1 is inst index 0, so
        // the flip lands before inst 1, the trunc).
        let ip = 1;
        assert!(lv.dead_or_masked(&m, fid, entry, ip, v, 8));
        assert!(lv.dead_or_masked(&m, fid, entry, ip, v, 63));
        assert!(!lv.dead_or_masked(&m, fid, entry, ip, v, 0));
        assert!(!lv.dead_or_masked(&m, fid, entry, ip, v, 7));
    }

    #[test]
    fn loop_carried_value_stays_live() {
        // acc accumulates across a loop: the loop-body redefinition reads
        // the previous value, so it is live at every boundary inside.
        let mut captured = None;
        let (m, fid) = module_with(|d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(8));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                captured = Some(a2);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        let a2 = captured.unwrap();
        let lv = ModuleLiveness::compute(&m);
        let func = m.function(fid);
        let body = func.def_inst(a2).map(|i| func.inst(i).block).unwrap();
        // Immediately after its definition inside the loop body the value
        // flows into the next iteration's phi: live.
        let defpos = func
            .block(body)
            .insts
            .iter()
            .position(|&i| func.inst(i).result == Some(a2))
            .unwrap();
        assert!(!lv.dead_or_masked(&m, fid, body, defpos + 1, a2, 0));
    }
}
