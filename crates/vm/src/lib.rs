#![warn(missing_docs)]

//! # softft-vm
//!
//! Execution substrate for the soft-ft IR — the role gem5 plays in the
//! paper (*Harnessing Soft Computations for Low-budget Fault Tolerance*,
//! MICRO 2014).
//!
//! Five pieces:
//!
//! * [`interp`] — a functional interpreter with bounds-checked linear
//!   memory, trap symptoms (out-of-bounds, divide-by-zero, watchdog) and a
//!   software-check trap, corresponding to the paper's *atomic* simulator
//!   model used for fault-coverage runs;
//! * [`fault`] — single-bit-flip injection into a live SSA value slot of
//!   the active frame (the analogue of the paper's register-file flips);
//! * [`decode`] — a pre-decoded flat bytecode image ([`DecodedModule`]):
//!   each function is lowered once into a dense instruction stream with
//!   pre-resolved operand slots and materialized phi-copy schedules, then
//!   shared read-only across every campaign trial. The interpreter
//!   executes the decoded stream by default; the tree-walking reference
//!   path remains selectable via `VmConfig::reference_interp` and the two
//!   are bitwise equivalent;
//! * `fuse` — the superinstruction tier above [`decode`]: hot
//!   intra-block opcode pairs (the `icmp+check` duplication signature,
//!   ALU chains, `load+sext`, the `icmp+condbr` back-edge test) fuse into
//!   single dispatches selected statically from a table seeded by the
//!   profiler's digram ranking. Fault-site keying, injection records and
//!   snapshot boundaries are identical to the decoded tier — a fused pair
//!   still reports both constituent dyn-inst boundaries — so all three
//!   engines ([`interp::Engine`]) are bitwise interchangeable mid-run;
//! * [`profile`] — an opt-in execution profiler ([`VmConfig::profiling`]):
//!   exact per-opcode and opcode-digram counters plus sampled wall-time
//!   attribution, kept strictly off the determinism path — results are
//!   bitwise identical with profiling on or off;
//! * [`timing`] — a two-issue out-of-order timing model (issue width,
//!   ROB, per-op latencies; Table II scaled), corresponding to the paper's
//!   *out-of-order* model used for performance-overhead runs. Independent
//!   duplicated chains overlap in the issue slots, which is exactly why
//!   selective duplication is cheap.
//!
//! ```
//! use softft_ir::dsl::FunctionDsl;
//! use softft_ir::{Module, Type};
//! use softft_vm::interp::{NoopObserver, Vm, VmConfig};
//!
//! let mut m = Module::new("demo");
//! let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
//!     let acc = d.declare_var(Type::I64);
//!     let z = d.i64c(0);
//!     d.set(acc, z);
//!     let (s, e) = (d.i64c(0), d.i64c(10));
//!     d.for_range(s, e, |d, i| {
//!         let a = d.get(acc);
//!         let a2 = d.add(a, i);
//!         d.set(acc, a2);
//!     });
//!     let a = d.get(acc);
//!     d.ret(Some(a));
//! });
//! let main = m.add_function(f);
//! let mut vm = Vm::new(&m, VmConfig::default());
//! let result = vm.run(main, &[], &mut NoopObserver, None);
//! assert_eq!(result.return_bits(), Some(45));
//! ```

pub(crate) mod affine;
pub mod decode;
pub mod fault;
pub(crate) mod fuse;
pub mod interp;
pub mod liveness;
pub mod memory;
pub mod outcome;
pub mod profile;
pub mod timing;

pub use decode::DecodedModule;
pub use fault::{FaultPlan, InjectionRecord};
pub use interp::{
    ConvergeOutcome, Engine, NoopObserver, Observer, Resolution, Snapshot, SuffixObserver, Vm,
    VmConfig,
};
pub use liveness::ModuleLiveness;
pub use memory::Memory;
pub use outcome::{RunEnd, RunResult, TrapKind};
pub use profile::{Digrams, HotDigram, OpClass, OpCounts, SampledTime, VmProfiler};
pub use timing::{CoreConfig, TimingModel};
