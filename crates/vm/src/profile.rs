//! Execution profiling: per-opcode and opcode-digram dynamic counters
//! plus sampled wall-time attribution.
//!
//! The profiler lives *beside* the determinism path, never on it: it
//! observes the instruction stream (which is deterministic) and the wall
//! clock (which is not), but nothing it measures ever feeds back into
//! execution, fault injection, or campaign classification. Counts are
//! exact and reproducible; times are sampled and advisory.
//!
//! Two consumers drive the design:
//!
//! * the **superinstruction tier** needs to know which opcode *pairs*
//!   dominate dynamic dispatch — [`VmProfiler::hot_digrams`] ranks
//!   digrams by estimated fused-dispatch savings;
//! * **observers** ([`softft-telemetry`]'s `TraceObserver`) need the same
//!   per-opcode tally the profiler keeps — [`OpCounts`] is the shared
//!   dense counter array, so the two can never disagree.
//!
//! Wall-time attribution is *sampled*, not instrumented: timestamping
//! every instruction would cost more than the instruction. Every
//! [`SAMPLE_STRIDE`] dynamic instructions the profiler reads the
//! monotonic clock once and attributes the elapsed interval to the
//! opcode class executing at the sample point — the standard sampling-
//! profiler estimator (unbiased as long as stride ≪ run length).

use crate::decode::{DKind, DTerm};
use softft_ir::inst::{BinOp, CastKind, Op, Term, UnOp};
use std::time::Instant;

/// Number of distinct opcode classes (all [`Op`] shapes, including the
/// never-dynamically-executed `phi`, plus the three terminators).
pub const NUM_OP_CLASSES: usize = 37;

/// Labels for every opcode class, indexed by [`OpClass::index`]. The
/// non-terminator labels match [`Op::mnemonic`], so metric keys like
/// `vm.ops.add` are stable across the profiler and the trace observer.
pub const OP_CLASS_LABELS: [&str; NUM_OP_CLASSES] = [
    "add", "sub", "mul", "sdiv", "srem", "udiv", "urem", "and", "or", "xor", "shl", "lshr", "ashr",
    "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fabs", "ffloor", "fneg", "icmp", "fcmp", "trunc",
    "zext", "sext", "fptosi", "sitofp", "select", "load", "store", "call", "check", "phi", "br",
    "condbr", "ret",
];

/// Dynamic instructions between wall-clock samples. Large enough that the
/// two `Instant::now` reads per sample are noise (< 0.01% of boundary
/// work), small enough that a multi-million-instruction run collects
/// thousands of samples.
pub const SAMPLE_STRIDE: u32 = 8192;

/// A dense opcode-class id: one per [`Op`] shape (binary/unary ops and
/// casts split per opcode, like [`Op::mnemonic`]) plus the three
/// terminator kinds (`br`, `condbr`, `ret`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpClass(u8);

const BIN_BASE: u8 = 0; // 17 binary opcodes
const UN_BASE: u8 = 17; // 4 unary opcodes
const ICMP: u8 = 21;
const FCMP: u8 = 22;
const CAST_BASE: u8 = 23; // 5 cast kinds
const SELECT: u8 = 28;
const LOAD: u8 = 29;
const STORE: u8 = 30;
const CALL: u8 = 31;
const CHECK: u8 = 32;
const PHI: u8 = 33;
const BR: u8 = 34;
const CONDBR: u8 = 35;
const RET: u8 = 36;

fn bin_offset(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::SDiv => 3,
        BinOp::SRem => 4,
        BinOp::UDiv => 5,
        BinOp::URem => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Shl => 10,
        BinOp::LShr => 11,
        BinOp::AShr => 12,
        BinOp::FAdd => 13,
        BinOp::FSub => 14,
        BinOp::FMul => 15,
        BinOp::FDiv => 16,
    }
}

fn un_offset(op: UnOp) -> u8 {
    match op {
        UnOp::FSqrt => 0,
        UnOp::FAbs => 1,
        UnOp::FFloor => 2,
        UnOp::FNeg => 3,
    }
}

fn cast_offset(kind: CastKind) -> u8 {
    match kind {
        CastKind::Trunc => 0,
        CastKind::ZExt => 1,
        CastKind::SExt => 2,
        CastKind::FpToSi => 3,
        CastKind::SiToFp => 4,
    }
}

impl OpClass {
    /// The `br` terminator class.
    pub const BR: OpClass = OpClass(BR);
    /// The `condbr` terminator class.
    pub const CONDBR: OpClass = OpClass(CONDBR);
    /// The `ret` terminator class.
    pub const RET: OpClass = OpClass(RET);

    /// The class of a non-terminator instruction.
    pub fn of_op(op: &Op) -> OpClass {
        OpClass(match op {
            Op::Bin { op, .. } => BIN_BASE + bin_offset(*op),
            Op::Un { op, .. } => UN_BASE + un_offset(*op),
            Op::Icmp { .. } => ICMP,
            Op::Fcmp { .. } => FCMP,
            Op::Cast { kind, .. } => CAST_BASE + cast_offset(*kind),
            Op::Select { .. } => SELECT,
            Op::Load { .. } => LOAD,
            Op::Store { .. } => STORE,
            Op::Call { .. } => CALL,
            Op::Check { .. } => CHECK,
            Op::Phi { .. } => PHI,
        })
    }

    /// The class of a terminator.
    pub fn of_term(term: &Term) -> OpClass {
        OpClass(match term {
            Term::Br(_) => BR,
            Term::CondBr { .. } => CONDBR,
            Term::Ret(_) => RET,
        })
    }

    /// The class of a decoded instruction.
    pub(crate) fn of_dkind(kind: &DKind) -> OpClass {
        OpClass(match kind {
            DKind::BinF { op, .. } | DKind::BinI { op, .. } => BIN_BASE + bin_offset(*op),
            DKind::Un { op, .. } => UN_BASE + un_offset(*op),
            DKind::Icmp { .. } => ICMP,
            DKind::Fcmp { .. } => FCMP,
            DKind::Cast { kind, .. } => CAST_BASE + cast_offset(*kind),
            DKind::Select { .. } => SELECT,
            DKind::Load { .. } => LOAD,
            DKind::Store { .. } => STORE,
            DKind::Call { .. } => CALL,
            DKind::Check { .. } => CHECK,
        })
    }

    /// The class of a decoded terminator.
    pub(crate) fn of_dterm(term: &DTerm) -> OpClass {
        OpClass(match term {
            DTerm::Br { .. } => BR,
            DTerm::CondBr { .. } => CONDBR,
            DTerm::Ret(_) | DTerm::Missing => RET,
        })
    }

    /// Dense index in `0..NUM_OP_CLASSES`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The class for a dense index, if in range.
    pub fn from_index(i: usize) -> Option<OpClass> {
        (i < NUM_OP_CLASSES).then_some(OpClass(i as u8))
    }

    /// The class with the given label, if any.
    pub fn from_label(label: &str) -> Option<OpClass> {
        OP_CLASS_LABELS
            .iter()
            .position(|&l| l == label)
            .map(|i| OpClass(i as u8))
    }

    /// Human/metric label (`add`, `icmp`, `condbr`, …), matching
    /// [`Op::mnemonic`] for non-terminators.
    pub fn label(self) -> &'static str {
        OP_CLASS_LABELS[self.index()]
    }

    /// True for the three terminator classes.
    pub fn is_terminator(self) -> bool {
        self.0 >= BR
    }

    /// True when a digram led by this class is guaranteed to be an
    /// intra-block fall-through pair — the only shape a superinstruction
    /// can legally fuse. The digram matrix records the *dispatch*
    /// sequence, so a pair led by a `call` straddles a frame boundary
    /// (the second opcode runs in the callee) and a pair led by a
    /// terminator straddles a CFG edge (phi copies run between the two);
    /// neither can retire under one fused dispatch. Every other lead
    /// class falls through to the next instruction of the same block
    /// (`icmp` → `condbr`, where the second is this block's *own*
    /// terminator, included).
    pub fn can_lead_fusion(self) -> bool {
        self.0 != CALL && !self.is_terminator()
    }
}

/// Dense per-opcode-class execution counts — the single opcode tally
/// shared by the VM profiler and observer-side tracing, so the two can
/// never drift apart.
///
/// Counts are exact (every dynamic instruction and terminator increments
/// exactly one class) and deterministic for a given run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; NUM_OP_CLASSES],
}

impl Default for OpCounts {
    fn default() -> Self {
        OpCounts {
            counts: [0; NUM_OP_CLASSES],
        }
    }
}

impl OpCounts {
    /// All-zero counts.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Increments the count for `class`.
    #[inline]
    pub fn record(&mut self, class: OpClass) {
        self.counts[class.index()] += 1;
    }

    /// The count for `class`.
    pub fn get(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Sum over all classes (== dynamic instructions + terminators).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(class, count)` in dense-index order, including zeros.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (OpClass(i as u8), n))
    }

    /// Iterates `(label, count)` for classes with a nonzero count, in
    /// dense-index order (deterministic).
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.iter()
            .filter(|&(_, n)| n > 0)
            .map(|(c, n)| (c.label(), n))
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &OpCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Adds the per-class deltas `end − boundary` into `self` — the
    /// counter form of replaying a golden suffix (see
    /// [`crate::interp::SuffixObserver`]).
    pub fn merge_delta(&mut self, boundary: &OpCounts, end: &OpCounts) {
        for (i, a) in self.counts.iter_mut().enumerate() {
            *a += end.counts[i] - boundary.counts[i];
        }
    }

    /// Adds the per-class deltas `(detect − anchor) × cycles` into `self`
    /// — the counter form of replaying a proven spin cycle `cycles` more
    /// times (see `SuffixObserver::fold_cycles`).
    pub fn merge_cycles(&mut self, anchor: &OpCounts, detect: &OpCounts, cycles: u64) {
        for (i, a) in self.counts.iter_mut().enumerate() {
            *a += (detect.counts[i] - anchor.counts[i]) * cycles;
        }
    }
}

/// A hot opcode pair from the digram matrix, ranked by how many dispatch
/// cycles a fused superinstruction would save.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotDigram {
    /// First opcode of the pair.
    pub first: OpClass,
    /// Second opcode of the pair.
    pub second: OpClass,
    /// Dynamic occurrences of the pair (adjacent in execution order).
    pub count: u64,
    /// Estimated fraction of all dynamic dispatches a fused
    /// `first+second` superinstruction eliminates: each occurrence
    /// replaces two dispatches with one, so this is `count / total`.
    pub est_dispatch_savings: f64,
}

/// The opcode-digram matrix: `counts[a][b]` is how many times class `b`
/// executed immediately after class `a` (across the whole run, including
/// across block and call boundaries — that is the dispatch sequence a
/// threaded/fused interpreter sees).
///
/// Note that pairs counted across a block or call boundary are *illegal
/// fusion candidates*: a pair led by a terminator crosses a CFG edge
/// (phi copies run in between) and a pair led by a `call` crosses a
/// frame boundary, so a superinstruction can never retire them in one
/// dispatch. [`Digrams::fusible_top`] restricts the ranking to the
/// intra-block fall-through pairs a fusion table may actually use (see
/// [`OpClass::can_lead_fusion`]); [`Digrams::top`] keeps the unfiltered
/// dispatch-sequence view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digrams {
    counts: Box<[u64]>,
}

impl Default for Digrams {
    fn default() -> Self {
        Digrams {
            counts: vec![0; NUM_OP_CLASSES * NUM_OP_CLASSES].into_boxed_slice(),
        }
    }
}

impl Digrams {
    /// All-zero matrix.
    pub fn new() -> Self {
        Digrams::default()
    }

    /// Increments the `(prev, cur)` pair count.
    #[inline]
    pub fn record(&mut self, prev: OpClass, cur: OpClass) {
        self.counts[prev.index() * NUM_OP_CLASSES + cur.index()] += 1;
    }

    /// The count for a pair.
    pub fn get(&self, first: OpClass, second: OpClass) -> u64 {
        self.counts[first.index() * NUM_OP_CLASSES + second.index()]
    }

    /// Sum over all pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &Digrams) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The `n` most frequent pairs, descending by count (ties broken by
    /// dense pair index, so the ranking is deterministic).
    /// `total_dispatches` scales the savings estimate — pass the run's
    /// [`OpCounts::total`].
    pub fn top(&self, n: usize, total_dispatches: u64) -> Vec<HotDigram> {
        self.top_filtered(n, total_dispatches, |_| true)
    }

    /// Like [`Digrams::top`], but restricted to pairs a superinstruction
    /// could legally fuse: intra-block fall-through pairs, i.e. pairs
    /// whose lead class is neither a `call` nor a terminator
    /// ([`OpClass::can_lead_fusion`]). Pairs this view drops relative to
    /// `top` are dispatch-adjacent only across a CFG edge or frame
    /// boundary, where their `est_dispatch_savings` could never be
    /// realized.
    pub fn fusible_top(&self, n: usize, total_dispatches: u64) -> Vec<HotDigram> {
        self.top_filtered(n, total_dispatches, OpClass::can_lead_fusion)
    }

    fn top_filtered(
        &self,
        n: usize,
        total_dispatches: u64,
        lead_ok: impl Fn(OpClass) -> bool,
    ) -> Vec<HotDigram> {
        let mut pairs: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(i, &c)| c > 0 && lead_ok(OpClass((i / NUM_OP_CLASSES) as u8)))
            .map(|(i, &c)| (i, c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs
            .into_iter()
            .take(n)
            .map(|(i, count)| HotDigram {
                first: OpClass((i / NUM_OP_CLASSES) as u8),
                second: OpClass((i % NUM_OP_CLASSES) as u8),
                count,
                est_dispatch_savings: if total_dispatches == 0 {
                    0.0
                } else {
                    count as f64 / total_dispatches as f64
                },
            })
            .collect()
    }
}

/// Sampled wall-time attributed to one opcode class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampledTime {
    /// Nanoseconds of sampled intervals attributed to this class.
    pub ns: u64,
    /// Number of clock samples that landed on this class.
    pub samples: u64,
}

/// The execution profiler attached to a [`crate::Vm`] when
/// [`crate::VmConfig::profiling`] is set.
///
/// Both engines (tree-walking reference and pre-decoded flat bytecode)
/// feed it one [`VmProfiler::record`] per dynamic instruction boundary,
/// immediately after the observer hook — so its exact counts equal the
/// observer-visible instruction stream by construction.
#[derive(Clone, Debug)]
pub struct VmProfiler {
    counts: OpCounts,
    digrams: Digrams,
    /// Pairs the fused engine retired under a single superinstruction
    /// dispatch, keyed by constituent classes. Always zero on the tree
    /// and decoded engines; purely observational on the fused one.
    fused: Digrams,
    prev: Option<OpClass>,
    until_sample: u32,
    last_sample: Option<Instant>,
    sampled: [SampledTime; NUM_OP_CLASSES],
}

impl Default for VmProfiler {
    fn default() -> Self {
        VmProfiler::new()
    }
}

impl VmProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        VmProfiler {
            counts: OpCounts::new(),
            digrams: Digrams::new(),
            fused: Digrams::new(),
            prev: None,
            until_sample: SAMPLE_STRIDE,
            last_sample: None,
            sampled: [SampledTime::default(); NUM_OP_CLASSES],
        }
    }

    /// Marks the start of a fresh run: the digram chain and the sampling
    /// clock do not span runs (counts accumulate across runs — callers
    /// wanting per-run counts take a fresh profiler).
    pub fn begin_run(&mut self) {
        self.prev = None;
        self.last_sample = None;
    }

    /// Records one executed instruction or terminator of class `class`.
    #[inline]
    pub fn record(&mut self, class: OpClass) {
        self.counts.record(class);
        if let Some(p) = self.prev {
            self.digrams.record(p, class);
        }
        self.prev = Some(class);
        self.until_sample -= 1;
        if self.until_sample == 0 {
            self.until_sample = SAMPLE_STRIDE;
            self.sample(class);
        }
    }

    /// Cold path: one clock read per [`SAMPLE_STRIDE`] instructions.
    fn sample(&mut self, class: OpClass) {
        let now = Instant::now();
        let slot = &mut self.sampled[class.index()];
        if let Some(last) = self.last_sample {
            slot.ns += now.duration_since(last).as_nanos() as u64;
        }
        slot.samples += 1;
        self.last_sample = Some(now);
    }

    /// Exact per-opcode-class execution counts.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// The exact digram matrix.
    pub fn digrams(&self) -> &Digrams {
        &self.digrams
    }

    /// Records one instruction pair retired by the fused engine under a
    /// single superinstruction dispatch. Does not touch the digram
    /// chain: the pair's constituents still go through
    /// [`VmProfiler::record`] individually, so `counts`/`digrams` stay
    /// engine-independent.
    #[inline]
    pub(crate) fn record_fused(&mut self, first: OpClass, second: OpClass) {
        self.fused.record(first, second);
    }

    /// Pairs retired via superinstructions by the fused engine, keyed by
    /// constituent classes. `2 * fused_pairs().total()` is the number of
    /// dynamic instructions (out of [`OpCounts::total`]) that retired
    /// under a fused dispatch.
    pub fn fused_pairs(&self) -> &Digrams {
        &self.fused
    }

    /// Sampled wall-time per class, `(class, time)` for classes with at
    /// least one sample, in dense-index order.
    pub fn sampled_times(&self) -> impl Iterator<Item = (OpClass, SampledTime)> + '_ {
        self.sampled
            .iter()
            .enumerate()
            .filter(|(_, t)| t.samples > 0)
            .map(|(i, &t)| (OpClass(i as u8), t))
    }

    /// The hot-sequence report: top `n` digrams ranked by estimated
    /// fused-dispatch savings (the input for a superinstruction tier).
    pub fn hot_digrams(&self, n: usize) -> Vec<HotDigram> {
        self.digrams.top(n, self.counts.total())
    }

    /// Like [`VmProfiler::hot_digrams`], but restricted to legally
    /// fusible (intra-block fall-through) pairs — the ranking a fusion
    /// table should be seeded from. See [`Digrams::fusible_top`].
    pub fn fusible_digrams(&self, n: usize) -> Vec<HotDigram> {
        self.digrams.fusible_top(n, self.counts.total())
    }

    /// Folds another profiler's exact counters and sampled times into
    /// this one (aggregation across runs or threads).
    pub fn merge(&mut self, other: &VmProfiler) {
        self.counts.merge(&other.counts);
        self.digrams.merge(&other.digrams);
        self.fused.merge(&other.fused);
        for (a, b) in self.sampled.iter_mut().zip(other.sampled.iter()) {
            a.ns += b.ns;
            a.samples += b.samples;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::inst::IntCC;
    use softft_ir::ValueId;

    fn add_op() -> Op {
        Op::Bin {
            op: BinOp::Add,
            lhs: ValueId::new(0),
            rhs: ValueId::new(1),
        }
    }

    #[test]
    fn labels_are_unique_and_cover_all_classes() {
        let mut seen = std::collections::BTreeSet::new();
        for l in OP_CLASS_LABELS {
            assert!(seen.insert(l), "duplicate label {l}");
        }
        assert_eq!(seen.len(), NUM_OP_CLASSES);
        for (i, label) in OP_CLASS_LABELS.iter().enumerate() {
            let c = OpClass::from_index(i).unwrap();
            assert_eq!(c.index(), i);
            assert_eq!(c.label(), *label);
        }
        assert!(OpClass::from_index(NUM_OP_CLASSES).is_none());
    }

    #[test]
    fn op_classes_match_mnemonics() {
        // Non-terminator classes share labels with Op::mnemonic, keeping
        // vm.ops.* metric keys stable.
        let op = add_op();
        assert_eq!(OpClass::of_op(&op).label(), op.mnemonic());
        let icmp = Op::Icmp {
            pred: IntCC::Eq,
            lhs: ValueId::new(0),
            rhs: ValueId::new(1),
        };
        assert_eq!(OpClass::of_op(&icmp).label(), icmp.mnemonic());
        assert_eq!(OpClass::of_term(&Term::Ret(None)).label(), "ret");
        assert!(OpClass::RET.is_terminator());
        assert!(!OpClass::of_op(&op).is_terminator());
    }

    #[test]
    fn counts_record_merge_and_delta() {
        let a = OpClass::of_op(&add_op());
        let mut x = OpCounts::new();
        x.record(a);
        x.record(a);
        x.record(OpClass::BR);
        assert_eq!(x.get(a), 2);
        assert_eq!(x.total(), 3);
        let labels: Vec<_> = x.iter_nonzero().collect();
        assert_eq!(labels, vec![("add", 2), ("br", 1)]);

        let mut y = OpCounts::new();
        y.record(a);
        y.merge(&x);
        assert_eq!(y.get(a), 3);

        // delta: end - boundary added onto an existing tally.
        let mut boundary = OpCounts::new();
        boundary.record(a);
        let mut end = boundary;
        end.record(a);
        end.record(OpClass::RET);
        let mut trial = OpCounts::new();
        trial.record(OpClass::BR);
        trial.merge_delta(&boundary, &end);
        assert_eq!(trial.get(a), 1);
        assert_eq!(trial.get(OpClass::RET), 1);
        assert_eq!(trial.get(OpClass::BR), 1);
    }

    #[test]
    fn digrams_count_adjacent_pairs() {
        let a = OpClass::of_op(&add_op());
        let mut p = VmProfiler::new();
        p.begin_run();
        for _ in 0..3 {
            p.record(a);
        }
        p.record(OpClass::BR);
        assert_eq!(p.counts().get(a), 3);
        assert_eq!(p.digrams().get(a, a), 2);
        assert_eq!(p.digrams().get(a, OpClass::BR), 1);
        // begin_run severs the chain: no digram across runs.
        p.begin_run();
        p.record(a);
        assert_eq!(p.digrams().get(OpClass::BR, a), 0);

        let hot = p.hot_digrams(10);
        assert_eq!(hot[0].first, a);
        assert_eq!(hot[0].second, a);
        assert_eq!(hot[0].count, 2);
        let expected = 2.0 / p.counts().total() as f64;
        assert!((hot[0].est_dispatch_savings - expected).abs() < 1e-12);
    }

    #[test]
    fn fusible_digrams_drop_boundary_led_pairs() {
        let a = OpClass::of_op(&add_op());
        let icmp = OpClass::from_label("icmp").unwrap();
        let check = OpClass::from_label("check").unwrap();
        let call = OpClass::from_label("call").unwrap();
        assert!(a.can_lead_fusion() && icmp.can_lead_fusion());
        assert!(!call.can_lead_fusion());
        assert!(!OpClass::BR.can_lead_fusion() && !OpClass::CONDBR.can_lead_fusion());

        // Dispatch stream: icmp check condbr icmp check call add — the
        // condbr→icmp pair crosses a CFG edge and the call→add pair a
        // frame boundary; both are dispatch-adjacent but unfusible.
        let mut p = VmProfiler::new();
        p.begin_run();
        for c in [icmp, check, OpClass::CONDBR, icmp, check, call, a] {
            p.record(c);
        }
        let hot = p.hot_digrams(usize::MAX);
        let fusible = p.fusible_digrams(usize::MAX);
        let pairs = |v: &[HotDigram]| -> Vec<(OpClass, OpClass)> {
            v.iter().map(|h| (h.first, h.second)).collect()
        };
        assert!(pairs(&hot).contains(&(OpClass::CONDBR, icmp)));
        assert!(pairs(&hot).contains(&(call, a)));
        assert!(!pairs(&fusible).contains(&(OpClass::CONDBR, icmp)));
        assert!(!pairs(&fusible).contains(&(call, a)));
        // What survives is exactly the fall-through pairs, same ranking
        // metric as `hot_digrams` (icmp→check counted twice leads).
        assert_eq!(fusible[0].first, icmp);
        assert_eq!(fusible[0].second, check);
        assert_eq!(fusible[0].count, 2);
        // icmp→condbr (a block's own terminator) stays fusible.
        p.record(icmp);
        p.record(OpClass::CONDBR);
        assert!(pairs(&p.fusible_digrams(usize::MAX)).contains(&(icmp, OpClass::CONDBR)));
        // Every fusible pair appears in the unfiltered view with the
        // same count.
        for h in p.fusible_digrams(usize::MAX) {
            assert_eq!(p.digrams().get(h.first, h.second), h.count);
        }
    }

    #[test]
    fn fused_pair_tally_is_separate_and_merges() {
        let a = OpClass::of_op(&add_op());
        let icmp = OpClass::from_label("icmp").unwrap();
        let check = OpClass::from_label("check").unwrap();
        let mut p = VmProfiler::new();
        p.record(icmp);
        p.record(check);
        p.record_fused(icmp, check);
        // The fused tally never feeds the digram chain or counts.
        assert_eq!(p.counts().total(), 2);
        assert_eq!(p.digrams().get(icmp, check), 1);
        assert_eq!(p.fused_pairs().get(icmp, check), 1);
        assert_eq!(p.fused_pairs().total(), 1);
        let mut q = VmProfiler::new();
        q.record_fused(icmp, check);
        q.record_fused(a, a);
        q.merge(&p);
        assert_eq!(q.fused_pairs().get(icmp, check), 2);
        assert_eq!(q.fused_pairs().get(a, a), 1);
    }

    #[test]
    fn merge_aggregates_profilers() {
        let a = OpClass::of_op(&add_op());
        let mut p = VmProfiler::new();
        p.record(a);
        p.record(a);
        let mut q = VmProfiler::new();
        q.record(a);
        q.merge(&p);
        assert_eq!(q.counts().get(a), 3);
        assert_eq!(q.digrams().get(a, a), 1);
    }
}
