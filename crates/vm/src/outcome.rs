//! Run outcomes and traps.

use crate::fault::InjectionRecord;
use serde::{Deserialize, Serialize};
use softft_ir::CheckKind;
use std::fmt;

/// Why execution stopped abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapKind {
    /// A memory access left the valid region (includes the sub-
    /// [`GLOBAL_BASE`](softft_ir::module::GLOBAL_BASE) guard page). The
    /// paper's analogue is a page fault / out-of-bounds symptom.
    OutOfBounds {
        /// Faulting byte address.
        addr: i64,
        /// Access width in bytes.
        size: u32,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// The dynamic-instruction watchdog expired (models a hang /
    /// infinite loop, classified as `Failure` by campaigns).
    Watchdog,
    /// A software detection check fired (duplication mismatch or
    /// expected-value check).
    SwDetect(CheckKind),
    /// Call stack exceeded the configured depth.
    CallDepth,
}

impl TrapKind {
    /// True for symptoms the hardware would report (used for the paper's
    /// `HWDetect` vs `Failure` split, which additionally depends on the
    /// detection latency).
    pub fn is_hw_symptom(self) -> bool {
        matches!(
            self,
            TrapKind::OutOfBounds { .. } | TrapKind::DivByZero | TrapKind::CallDepth
        )
    }
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::OutOfBounds { addr, size } => {
                write!(f, "out-of-bounds access of {size} bytes at {addr:#x}")
            }
            TrapKind::DivByZero => write!(f, "integer division by zero"),
            TrapKind::Watchdog => write!(f, "watchdog expired (possible infinite loop)"),
            TrapKind::SwDetect(k) => write!(f, "software check fired ({k:?})"),
            TrapKind::CallDepth => write!(f, "call depth exceeded"),
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RunEnd {
    /// The entry function returned normally.
    Completed {
        /// Raw bits of the return value, if the function returns one.
        ret: Option<u64>,
    },
    /// Execution trapped.
    Trap {
        /// The trap.
        kind: TrapKind,
        /// Dynamic instruction index at which the trap occurred.
        at_dyn: u64,
    },
}

/// Result of one VM run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// How the run ended.
    pub end: RunEnd,
    /// Total dynamic instructions executed (non-phi instructions plus
    /// terminators).
    pub dyn_insts: u64,
    /// The injection actually performed, if a fault plan was supplied and
    /// its trigger point was reached.
    pub injection: Option<InjectionRecord>,
    /// Number of failing checks observed when
    /// [`crate::VmConfig::checks_count_only`] is set (always 0 otherwise —
    /// the first failing check traps).
    pub check_failures: u64,
}

impl RunResult {
    /// Return-value bits if the run completed with a value.
    pub fn return_bits(&self) -> Option<u64> {
        match self.end {
            RunEnd::Completed { ret } => ret,
            RunEnd::Trap { .. } => None,
        }
    }

    /// True if the run completed normally.
    pub fn completed(&self) -> bool {
        matches!(self.end, RunEnd::Completed { .. })
    }

    /// The trap, if the run trapped.
    pub fn trap(&self) -> Option<(TrapKind, u64)> {
        match self.end {
            RunEnd::Trap { kind, at_dyn } => Some((kind, at_dyn)),
            RunEnd::Completed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symptom_classification() {
        assert!(TrapKind::OutOfBounds { addr: 0, size: 4 }.is_hw_symptom());
        assert!(TrapKind::DivByZero.is_hw_symptom());
        assert!(!TrapKind::Watchdog.is_hw_symptom());
        assert!(!TrapKind::SwDetect(CheckKind::ValueRange).is_hw_symptom());
    }

    #[test]
    fn result_accessors() {
        let r = RunResult {
            end: RunEnd::Completed { ret: Some(7) },
            dyn_insts: 10,
            injection: None,
            check_failures: 0,
        };
        assert_eq!(r.return_bits(), Some(7));
        assert!(r.completed());
        assert!(r.trap().is_none());

        let t = RunResult {
            end: RunEnd::Trap {
                kind: TrapKind::DivByZero,
                at_dyn: 5,
            },
            dyn_insts: 5,
            injection: None,
            check_failures: 0,
        };
        assert_eq!(t.trap(), Some((TrapKind::DivByZero, 5)));
        assert!(t.return_bits().is_none());
    }

    #[test]
    fn traps_display() {
        let s = format!(
            "{}",
            TrapKind::OutOfBounds {
                addr: 0x10,
                size: 4
            }
        );
        assert!(s.contains("out-of-bounds"));
        assert!(format!("{}", TrapKind::Watchdog).contains("watchdog"));
    }
}
