//! Linear, bounds-checked byte memory.

use crate::outcome::TrapKind;
use softft_ir::module::{Module, GLOBAL_BASE};
use softft_ir::Type;

/// Byte-addressable memory initialized from a module's global layout.
///
/// Addresses below [`GLOBAL_BASE`] are a guard region: accessing them traps
/// — the analogue of a page fault on a null/corrupted base pointer, which
/// the paper counts as a hardware-detectable symptom.
#[derive(Debug)]
pub struct Memory {
    bytes: Vec<u8>,
}

// Byte-wise equality: the convergence early-exit compares a trial's
// memory against a golden checkpoint image.
impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Memory {}

impl Clone for Memory {
    fn clone(&self) -> Self {
        Memory {
            bytes: self.bytes.clone(),
        }
    }

    // Campaign trials restore a ~1 MiB image thousands of times;
    // delegating to `Vec::clone_from` reuses the destination allocation
    // instead of re-faulting fresh pages per trial.
    fn clone_from(&mut self, source: &Self) {
        self.bytes.clone_from(&source.bytes);
    }
}

impl Memory {
    /// Allocates memory for `module` plus `slack` scratch bytes after the
    /// last global, and copies global initializers into place.
    pub fn for_module(module: &Module, slack: u64) -> Self {
        let size = (module.memory_end() + slack) as usize;
        let mut bytes = vec![0u8; size];
        for g in module.globals() {
            let at = g.addr as usize;
            bytes[at..at + g.init.len()].copy_from_slice(&g.init);
        }
        Memory { bytes }
    }

    /// A zero-capacity placeholder, for VMs whose real image arrives via
    /// [`crate::interp::Vm::resume_from`].
    pub fn empty() -> Self {
        Memory { bytes: Vec::new() }
    }

    /// Total addressable size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero capacity (never the case for
    /// module-built memories).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn span(&self, addr: i64, size: u32) -> Result<usize, TrapKind> {
        let a = addr as u64;
        if addr < 0
            || a < GLOBAL_BASE
            || a.checked_add(size as u64)
                .is_none_or(|end| end > self.bytes.len() as u64)
        {
            return Err(TrapKind::OutOfBounds { addr, size });
        }
        Ok(a as usize)
    }

    /// Loads a value of type `ty` from `addr` (little-endian,
    /// sign-extended to the canonical i64 form for integers).
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] if the access leaves the valid
    /// region.
    pub fn load(&self, addr: i64, ty: Type) -> Result<u64, TrapKind> {
        let at = self.span(addr, ty.bytes())?;
        let raw =
            match ty.bytes() {
                1 => self.bytes[at] as u64,
                2 => u16::from_le_bytes(self.bytes[at..at + 2].try_into().expect("span checked"))
                    as u64,
                4 => u32::from_le_bytes(self.bytes[at..at + 4].try_into().expect("span checked"))
                    as u64,
                8 => u64::from_le_bytes(self.bytes[at..at + 8].try_into().expect("span checked")),
                _ => unreachable!("no other widths"),
            };
        Ok(if ty.is_float() {
            raw
        } else {
            ty.sign_extend(raw) as u64
        })
    }

    /// Stores the low `ty.bytes()` bytes of `bits` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] if the access leaves the valid
    /// region.
    pub fn store(&mut self, addr: i64, ty: Type, bits: u64) -> Result<(), TrapKind> {
        let at = self.span(addr, ty.bytes())?;
        match ty.bytes() {
            1 => self.bytes[at] = bits as u8,
            2 => self.bytes[at..at + 2].copy_from_slice(&(bits as u16).to_le_bytes()),
            4 => self.bytes[at..at + 4].copy_from_slice(&(bits as u32).to_le_bytes()),
            8 => self.bytes[at..at + 8].copy_from_slice(&bits.to_le_bytes()),
            _ => unreachable!("no other widths"),
        }
        Ok(())
    }

    /// Reads `len` raw bytes starting at `addr` (host-side, for harnesses;
    /// panics rather than traps).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Writes raw bytes starting at `addr` (host-side, for loading
    /// workload inputs).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::Module;

    fn mem() -> Memory {
        let mut m = Module::new("m");
        m.add_global_init("g", 64, vec![0xAA, 0xBB]);
        Memory::for_module(&m, 128)
    }

    #[test]
    fn initializers_are_copied() {
        let m = mem();
        assert_eq!(
            m.load(GLOBAL_BASE as i64, Type::I8).unwrap() as i8 as i64,
            -86
        ); // 0xAA sign-extended
        assert_eq!(m.read_bytes(GLOBAL_BASE, 2), &[0xAA, 0xBB]);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut m = mem();
        let a = GLOBAL_BASE as i64 + 8;
        for (ty, v) in [
            (Type::I8, -5i64),
            (Type::I16, -300),
            (Type::I32, 1 << 20),
            (Type::I64, -(1 << 40)),
        ] {
            m.store(a, ty, v as u64).unwrap();
            assert_eq!(m.load(a, ty).unwrap() as i64, v, "{ty}");
        }
        m.store(a, Type::F64, 2.5f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(m.load(a, Type::F64).unwrap()), 2.5);
    }

    #[test]
    fn null_guard_traps() {
        let m = mem();
        assert!(matches!(
            m.load(0, Type::I32),
            Err(TrapKind::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.load(16, Type::I8),
            Err(TrapKind::OutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_and_past_end_trap() {
        let mut m = mem();
        assert!(m.load(-8, Type::I64).is_err());
        let end = m.len() as i64;
        assert!(m.load(end - 4, Type::I64).is_err()); // straddles the end
        assert!(m.store(end, Type::I8, 0).is_err());
        assert!(m.load(i64::MAX - 2, Type::I32).is_err()); // overflow-safe
    }

    #[test]
    fn partial_width_store_preserves_neighbors() {
        let mut m = mem();
        let a = GLOBAL_BASE as i64 + 16;
        m.store(a, Type::I64, 0xFFFF_FFFF_FFFF_FFFF).unwrap();
        m.store(a + 2, Type::I16, 0).unwrap();
        let got = m.load(a, Type::I64).unwrap();
        assert_eq!(got, 0xFFFF_FFFF_0000_FFFF);
    }
}
