//! The IR interpreter (functional model).
//!
//! The interpreter is an explicit frame-stack machine rather than a
//! recursive evaluator: the complete architectural state at any dynamic
//! instruction boundary is `(Memory, Vec<Frame>, dyn_count)`, which makes
//! it cheap to capture as a [`Snapshot`] during a golden run and resume
//! later — injection campaigns use this to skip re-executing the shared
//! fault-free prefix of every trial (DETOx-style campaign acceleration).

use crate::decode::{DEveryK, DNoSink, DecodedModule, Scratch};
use crate::fault::{flip_bit, FaultInjector, FaultKind, FaultPlan, InjectionRecord};
use crate::memory::Memory;
use crate::outcome::{RunEnd, RunResult, TrapKind};
use crate::profile::{OpClass, VmProfiler};
use softft_ir::function::{Function, ValueKind};
use softft_ir::inst::{BinOp, CastKind, FloatCC, IntCC, Op, Term, UnOp};
use softft_ir::{BlockId, FuncId, InstId, Module, Type, ValueId};
use std::sync::Arc;

/// Which execution engine a [`Vm`] dispatches to. All three are bitwise
/// equivalent — same results, traps, injection records, observer streams,
/// snapshots and profiles (`tests/decoded_equiv.rs` gates this) — and
/// differ only in throughput:
///
/// * [`Engine::Tree`] — the original tree-walking reference interpreter
///   (the semantic oracle; slowest).
/// * [`Engine::Decoded`] — pre-decoded flat bytecode (operands resolved
///   to frame slots once, per-instruction dispatch).
/// * [`Engine::Fused`] — superinstruction fusion over the decoded
///   stream: hot intra-block instruction pairs retire under a single
///   dense-tag dispatch (see `crate::fuse`). The default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Tree-walking reference interpreter.
    Tree,
    /// Pre-decoded flat bytecode engine.
    Decoded,
    /// Superinstruction-fused engine over the decoded stream.
    #[default]
    Fused,
}

impl Engine {
    /// Stable lower-case name (CLI flags, bench JSON columns).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Decoded => "decoded",
            Engine::Fused => "fused",
        }
    }

    /// Parses a [`Engine::label`] string.
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "tree" => Some(Engine::Tree),
            "decoded" => Some(Engine::Decoded),
            "fused" => Some(Engine::Fused),
            _ => None,
        }
    }
}

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Scratch bytes appended after the last global.
    pub mem_slack: u64,
    /// Dynamic-instruction watchdog (models hang detection; the paper
    /// classifies infinite loops as `Failure`).
    pub max_dyn_insts: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
    /// When true, failing [`softft_ir::Op::Check`] instructions are
    /// *counted* instead of trapping — modelling a detection-plus-recovery
    /// system that continues after recovering. Used for the paper's
    /// false-positive measurement (checks firing with no fault present).
    pub checks_count_only: bool,
    /// When true, executes with the original tree-walking interpreter
    /// regardless of [`VmConfig::engine`]. Kept as a boolean shorthand
    /// for the differential tests and the "before" leg of the
    /// interpreter throughput bench; equivalent to `engine:
    /// Engine::Tree`.
    pub reference_interp: bool,
    /// Which execution tier to dispatch to (overridden by
    /// [`VmConfig::reference_interp`]; see [`VmConfig::effective_engine`]).
    pub engine: Engine,
    /// When true, the VM carries a [`VmProfiler`] that tallies per-opcode
    /// and opcode-digram execution counts plus sampled wall-time. Purely
    /// observational: run results, injections, and observer streams are
    /// bitwise identical with profiling on or off
    /// (`tests/profile_equiv.rs` gates this). Off by default — the hot
    /// path then pays one predictable branch per boundary.
    pub profiling: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_slack: 1 << 20,
            max_dyn_insts: 400_000_000,
            max_call_depth: 64,
            checks_count_only: false,
            reference_interp: false,
            engine: Engine::default(),
            profiling: false,
        }
    }
}

impl VmConfig {
    /// The engine this configuration actually dispatches to:
    /// [`VmConfig::reference_interp`] forces [`Engine::Tree`], otherwise
    /// [`VmConfig::engine`] decides.
    pub fn effective_engine(&self) -> Engine {
        if self.reference_interp {
            Engine::Tree
        } else {
            self.engine
        }
    }
}

/// Hooks invoked during interpretation. All methods have no-op defaults.
///
/// Observers receive *canonical bits* (sign-extended integers, float bit
/// patterns) — the same representation the fault injector mutates.
pub trait Observer {
    /// A frame was pushed for `func`.
    fn on_enter(&mut self, func: FuncId, f: &Function) {
        let _ = (func, f);
    }
    /// The frame for `func` was popped.
    fn on_exit(&mut self, func: FuncId) {
        let _ = func;
    }
    /// `inst` in `func` is about to execute (called for non-phi
    /// instructions only).
    fn on_exec(&mut self, func: FuncId, f: &Function, inst: InstId) {
        let _ = (func, f, inst);
    }
    /// `inst` produced `bits` of type `ty`.
    fn on_result(&mut self, func: FuncId, f: &Function, inst: InstId, ty: Type, bits: u64) {
        let _ = (func, f, inst, ty, bits);
    }
    /// The terminator of `block` in `func` is about to execute.
    fn on_term(&mut self, func: FuncId, f: &Function, block: BlockId) {
        let _ = (func, f, block);
    }
    /// Phi `inst` selected `incoming` on block entry (a register rename;
    /// timing models propagate readiness through it).
    fn on_phi(&mut self, func: FuncId, f: &Function, inst: InstId, incoming: ValueId) {
        let _ = (func, f, inst, incoming);
    }
    /// A [`Op::Check`] at `inst` failed (called in both trapping and
    /// counting modes, before the trap is raised).
    fn on_check_fail(&mut self, func: FuncId, f: &Function, inst: InstId) {
        let _ = (func, f, inst);
    }
    /// A fault was injected (called right after the architectural state
    /// was corrupted; `rec` is the same record the [`RunResult`] will
    /// carry). For register faults this fires at the trigger; for
    /// branch-target faults, at the corrupted branch.
    fn on_inject(&mut self, rec: &InjectionRecord) {
        let _ = rec;
    }
}

/// An observer that does nothing (zero-cost when monomorphized).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Observers usable with the convergence early-exit
/// ([`Vm::resume_converging`]): when a trial halts at a golden
/// checkpoint, its observer must absorb the events of the skipped golden
/// suffix. `boundary` is the golden observer's state at the convergence
/// point, `end` its state at golden completion; after the call, `self`
/// must equal what a full (non-exiting) run of the trial would have
/// produced. For counter-style observers that is `self += end - boundary`
/// per counter.
pub trait SuffixObserver: Observer + Clone {
    /// Folds the golden suffix `boundary..end` into this observer.
    fn fast_forward(&mut self, boundary: &Self, end: &Self);

    /// Folds `cycles` repetitions of the event window between `anchor`
    /// and `detect` into this observer. Called when the spin proof
    /// ([`Vm::resume_converging`] with a spin grid) shortcut a provably
    /// infinite loop: the machine executed the window once (anchor →
    /// detect) plus the sub-period remainder live, and this call absorbs
    /// the `cycles` full periods that were skipped. After it, `self`
    /// must equal what executing those periods would have produced.
    ///
    /// The default is a no-op, which is correct for any observer whose
    /// state provably cannot change inside a proven cycle: the proof
    /// requires the check-failure counter to recur, so a cycle contains
    /// zero check firings and zero injections (the fault is consumed
    /// before anchoring). Observers that count executed instructions
    /// (e.g. a tracer) must override and scale their per-event counters
    /// by `cycles`.
    fn fold_cycles(&mut self, anchor: &Self, detect: &Self, cycles: u64) {
        let _ = (anchor, detect, cycles);
    }
}

impl SuffixObserver for NoopObserver {
    fn fast_forward(&mut self, _: &Self, _: &Self) {}
}

/// One activation record. Cloning a frame (for snapshots) copies the slot
/// array; everything else is indices. Equality is bitwise over the whole
/// record — the convergence check relies on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    /// One slot per SSA value; `Some` once defined. Constants are never
    /// materialized here (they are immediates, not register state).
    pub(crate) slots: Vec<Option<u64>>,
    /// Set once a branch-target fault corrupted this frame's control
    /// flow: SSA liveness no longer holds, so reads of never-written
    /// slots yield stale zeros instead of asserting.
    pub(crate) lenient: bool,
    /// Current block.
    pub(crate) block: BlockId,
    /// Index of the next instruction in `block` (`insts.len()` means the
    /// terminator is next).
    pub(crate) ip: usize,
    /// When this frame is suspended below an active callee: the call
    /// instruction awaiting the callee's return value.
    pub(crate) call_inst: Option<InstId>,
}

/// A resumable checkpoint of the full architectural state — linear memory,
/// the frame stack, and the dynamic-instruction / check-failure counters —
/// captured at a dynamic-instruction boundary (*before* the instruction at
/// [`Snapshot::dyn_count`] executes).
///
/// Produced by [`Vm::run_recording`]; consumed by [`Vm::resume_from`].
/// Because execution is deterministic, resuming a snapshot and running a
/// fresh run from instruction 0 are bitwise equivalent for any fault plan
/// whose trigger is at or after the snapshot point.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub(crate) dyn_count: u64,
    pub(crate) check_failures: u64,
    pub(crate) mem: Memory,
    /// Bottom-to-top; the last frame is the executing one.
    pub(crate) stack: Vec<Frame>,
}

impl Snapshot {
    /// The dynamic-instruction boundary this snapshot was captured at.
    pub fn dyn_count(&self) -> u64 {
        self.dyn_count
    }

    /// The captured memory image.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Approximate heap footprint in bytes (memory image + slot arrays);
    /// used for checkpoint-budget reporting.
    pub fn size_bytes(&self) -> usize {
        self.mem.len()
            + self
                .stack
                .iter()
                .map(|f| f.slots.len() * std::mem::size_of::<Option<u64>>())
                .sum::<usize>()
    }
}

/// Boundary hook threaded through the machine loop. `NoSink` compiles to
/// nothing; `EveryK` captures snapshots during golden recording runs;
/// `ConvergeSink` compares trial state against golden checkpoints.
/// Returning `true` halts the machine at this boundary (before the
/// instruction at the current `dyn_count` executes).
trait Sink<O: Observer> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &Frame,
        below: &[Frame],
        state: &ExecState,
        obs: &O,
    ) -> bool;
}

struct NoSink;

impl<O: Observer> Sink<O> for NoSink {
    #[inline(always)]
    fn at_boundary(&mut self, _: &Memory, _: &Frame, _: &[Frame], _: &ExecState, _: &O) -> bool {
        false
    }
}

/// Captures a [`Snapshot`] whenever `dyn_count` is a positive multiple of
/// `interval`. Each boundary is visited exactly once, so each multiple
/// yields exactly one checkpoint.
struct EveryK<'a, F> {
    interval: u64,
    f: &'a mut F,
}

impl<O: Observer, F: FnMut(Snapshot, &O)> Sink<O> for EveryK<'_, F> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &Frame,
        below: &[Frame],
        state: &ExecState,
        obs: &O,
    ) -> bool {
        if state.dyn_count != 0 && state.dyn_count.is_multiple_of(self.interval) {
            let mut stack = below.to_vec();
            stack.push(cur.clone());
            (self.f)(
                Snapshot {
                    dyn_count: state.dyn_count,
                    check_failures: state.check_failures,
                    mem: mem.clone(),
                    stack,
                },
                obs,
            );
        }
        false
    }
}

/// A reference snapshot of the full architectural state taken at a grid
/// boundary by [`SpinCore`]: if the machine's state ever *exactly* equals
/// the anchor again at a later boundary, execution is provably periodic.
pub(crate) struct SpinAnchor<O> {
    dyn_count: u64,
    check_failures: u64,
    mem: Memory,
    /// Bottom-to-top, reference [`Frame`]s (engine-portable; decoded
    /// frames compare against these via `DFrame::matches`).
    stack: Vec<Frame>,
    obs: O,
}

/// Grade of the current *top frame* against a [`SpinAnchor`]'s. Deep
/// state (suspended frames, the memory image) is deliberately excluded:
/// this runs at every instruction boundary once a site match occurs, so
/// it must stay cheap — the sink's separate `deep_eq` closure checks the
/// rest only when the grade makes the cost worthwhile.
pub(crate) enum SpinCmp {
    /// Top frame bitwise equal to the anchor's (shape and every slot).
    Equal,
    /// Same shape, but up to [`crate::affine::MAX_DRIFT_SLOTS`] defined
    /// slots differ: `(value index, anchor bits, current bits)`,
    /// ascending by index.
    Drift(Vec<(usize, u64, u64)>),
    /// Different frame, or too many slot diffs. The payload, when
    /// present, is a differing slot index the core caches as an O(1)
    /// *witness*: while the machine keeps passing the anchor's site with
    /// unrelated data in flight (an inner loop re-visiting the anchor
    /// instruction), that one slot almost always still differs and the
    /// full slot scan is skipped.
    Mismatch(Option<usize>),
}

/// An affine-recurrence candidate awaiting confirmation. Two
/// *proportional* observations of the same drift signature fixed a
/// period and per-slot per-period deltas; at `confirm_at` — exactly one
/// period past the formation boundary, where the deep state matched the
/// anchor — the same slots must sit at exactly `expect` with the deep
/// state matching again. Then [`crate::affine::affine_spin_sound`]
/// decides whether extrapolating the drift to the watchdog bound is
/// sound.
struct DriftCand<O> {
    period: u64,
    confirm_at: u64,
    /// Expected anchor→confirm slot deltas at the confirm boundary.
    expect: Vec<(usize, i64)>,
    /// Per-period deltas — the static validator's drift set.
    per_period: Vec<(usize, i64)>,
    /// Observer at the formation boundary — one period before
    /// `confirm_at`, so (formation, confirm) span exactly one period for
    /// [`SuffixObserver::fold_cycles`].
    obs: O,
}

/// One drift-signature track: the most recent observation of a given
/// set of drifting top-frame slots at the anchor's site.
struct SigTrack {
    /// Differing slot indices, ascending — the signature key.
    sig: Vec<usize>,
    /// Distance (dyn insts) from the anchor at the last observation.
    dist: u64,
    /// Anchor→observation slot deltas at that distance.
    deltas: Vec<i64>,
    /// A candidate from this signature already failed (non-linear
    /// confirm, deep-state mismatch, or an unsound counter chain): stop
    /// trying until the next re-anchor.
    burned: bool,
}

/// Concurrent drift signatures tracked per anchor. Distinct signatures
/// arise from e.g. pre- vs post-fixpoint sweeps; a tiny FIFO suffices.
const MAX_SIG_TRACKS: usize = 4;

/// Evidence that execution is in a provable infinite loop: the full
/// state recurred, so the run can only end in the watchdog trap.
pub(crate) struct SpinProof<O> {
    /// Whole periods between the halt boundary and the watchdog bound.
    pub(crate) cycles: u64,
    /// Observer state at the anchor boundary (cycle start).
    pub(crate) anchor_obs: O,
    /// Observer state one period later (cycle end).
    pub(crate) detect_obs: O,
}

/// Divergence-bounded execution: detects that a diverged trial's full
/// architectural state (memory, frame stack, check-failure counter)
/// *exactly recurs* at two dynamic-instruction boundaries with the fault
/// consumed. Execution is a pure function of that state — `dyn_count`
/// only feeds the watchdog and the (already consumed) fault trigger, and
/// observers are write-only — so recurrence proves the machine loops
/// forever and can only end in [`TrapKind::Watchdog`] at the
/// dynamic-instruction bound. The machine then executes only the
/// sub-period remainder `(max_dyn - detect) % period` live (which lands
/// it on a state bitwise equal to the state at `max_dyn`) and halts;
/// the skipped whole periods are folded into the observer via
/// [`SuffixObserver::fold_cycles`].
///
/// Detection is *site-locked*, not grid-sampled: once an anchor exists,
/// every instruction boundary is graded against it, with an O(1)
/// early-out (block/ip compare, then the cached witness slot) making the
/// per-instruction cost a couple of compares. A full recurrence is
/// therefore caught at its first return to the anchor's site — latency
/// is one loop period, independent of the checkpoint interval — and
/// affine drifts are caught from proportional observations at period
/// multiples. The grid only paces anchor management: the first capture
/// waits two grid spans after the fault resolves (most trials converge
/// first), and Brent-style re-capture doubles a window measured in grid
/// spans, so any period is hunted from some anchor within a constant
/// factor of its length using a single stored snapshot.
pub(crate) struct SpinCore<O> {
    /// Anchor-cadence unit (the checkpoint interval). Detection itself
    /// is site-locked and independent of this.
    grid: u64,
    /// The watchdog bound the proof projects to.
    max_dyn: u64,
    /// First boundary eligible for anchor capture, two grid spans after
    /// the fault resolves (`u64::MAX` = not yet scheduled).
    first_eligible: u64,
    /// Brent window in grid spans: the anchor is re-captured once it is
    /// `window * grid` boundaries old, then the window doubles.
    window: u64,
    anchor: Option<SpinAnchor<O>>,
    /// Cached differing-slot index for O(1) rejection at the anchor site.
    witness: Option<usize>,
    /// Drift-signature observations against the current anchor.
    sigs: Vec<SigTrack>,
    /// Pending affine-drift candidate awaiting its confirm boundary.
    drift: Option<DriftCand<O>>,
    /// Once proven: the boundary to halt at (`u64::MAX` = no proof yet).
    halt_at: u64,
    proof: Option<SpinProof<O>>,
}

impl<O: SuffixObserver> SpinCore<O> {
    pub(crate) fn new(grid: u64, max_dyn: u64) -> Self {
        debug_assert!(grid > 0);
        SpinCore {
            grid,
            max_dyn,
            first_eligible: u64::MAX,
            window: 1,
            anchor: None,
            witness: None,
            sigs: Vec::new(),
            drift: None,
            halt_at: u64::MAX,
            proof: None,
        }
    }

    /// The halt boundary once a spin is proven (`u64::MAX` before).
    /// Sinks consult this first and stop comparing candidates after a
    /// proof: a convergence match after recurrence is impossible (it
    /// would imply the golden — terminating — suffix, contradicting the
    /// proven non-termination).
    #[inline]
    pub(crate) fn halt_at(&self) -> u64 {
        self.halt_at
    }

    /// Takes the proof out (the wrapper folds it into the observer).
    pub(crate) fn take_proof(&mut self) -> Option<SpinProof<O>> {
        self.proof.take()
    }

    /// Runs the recurrence check at an instruction boundary. `grade`
    /// grades the current *top frame* against the anchor's (equal,
    /// affinely drifted, or neither — its second argument is the cached
    /// witness slot for O(1) rejection); `deep_eq` checks the suspended
    /// frames and the memory image, and is only invoked when the grade
    /// warrants it; `capture` clones the current state into reference
    /// form; `affine_ok` runs the static counter-chain soundness check
    /// ([`crate::affine::affine_spin_sound`]) for a confirmed linear
    /// drift. Returns `true` to halt the machine at this boundary.
    pub(crate) fn on_boundary(
        &mut self,
        state: &ExecState,
        obs: &O,
        grade: impl FnOnce(&SpinAnchor<O>, Option<usize>) -> SpinCmp,
        deep_eq: impl FnOnce(&SpinAnchor<O>) -> bool,
        capture: impl FnOnce() -> (Memory, Vec<Frame>),
        affine_ok: impl FnOnce(&Frame, &[(usize, i64)], u64) -> bool,
    ) -> bool {
        if self.halt_at != u64::MAX {
            return state.dyn_count >= self.halt_at;
        }
        // Until the fault is resolved the state still carries the pending
        // injection; recurrence before that proves nothing (the flip
        // would break the cycle). A *corrupted* control flow is fine —
        // wild branches are exactly how spins arise.
        if state.fault.is_some() || state.branch_fault_armed.is_some() {
            return false;
        }
        if state.dyn_count == 0 {
            return false;
        }
        if self.anchor.is_none() {
            if self.first_eligible == u64::MAX {
                self.first_eligible = state.dyn_count.saturating_add(2 * self.grid);
            } else if state.dyn_count >= self.first_eligible {
                self.capture_anchor(state, obs, capture);
            }
            return false;
        }
        if let Some(cand) = &self.drift {
            // Candidate pending: stay silent until its confirm boundary.
            if state.dyn_count < cand.confirm_at {
                return false;
            }
            debug_assert_eq!(state.dyn_count, cand.confirm_at);
            let cand = self.drift.take().expect("drift candidate present");
            let a = self.anchor.as_ref().expect("anchor held during candidacy");
            let confirmed = a.check_failures == state.check_failures
                && matches!(grade(a, None), SpinCmp::Drift(d) if drift_matches(&cand.expect, &d))
                && deep_eq(a);
            if confirmed {
                // Linear drift held over one more period with the rest of
                // the state recurring. Extrapolating it to the watchdog
                // bound is sound only if the IR says the drifted slots
                // are closed counter chains whose comparisons cannot
                // cross their bounds in `cycles + 2` periods.
                let remaining = self.max_dyn - state.dyn_count;
                let cycles = remaining / cand.period;
                let rem = remaining % cand.period;
                let top = a.stack.last().expect("anchor has a frame");
                if affine_ok(top, &cand.per_period, cycles + 2) {
                    self.proof = Some(SpinProof {
                        cycles,
                        anchor_obs: cand.obs,
                        detect_obs: obs.clone(),
                    });
                    self.halt_at = state.dyn_count + rem;
                    return rem == 0;
                }
            }
            // Failed candidate: keep the anchor — it can still catch an
            // exact recurrence or a different signature — but burn this
            // signature until the next re-anchor so a cyclic shape cannot
            // keep buying confirms.
            self.burn(&cand.expect);
            return false;
        }
        let verdict = {
            let a = self.anchor.as_ref().expect("anchored");
            if a.check_failures == state.check_failures {
                grade(a, self.witness)
            } else {
                SpinCmp::Mismatch(None)
            }
        };
        match verdict {
            SpinCmp::Equal => {
                if deep_eq(self.anchor.as_ref().expect("anchored")) {
                    // Full-state recurrence: the boundary distance itself
                    // is a valid period.
                    let a = self.anchor.take().expect("anchored");
                    return self.prove(state.dyn_count - a.dyn_count, state, a.obs, obs);
                }
            }
            SpinCmp::Drift(diffs) => {
                self.observe(state, obs, &diffs, deep_eq);
                if self.drift.is_some() {
                    // Candidate formed: hold the anchor (past its Brent
                    // window if need be) until it confirms or dies.
                    return false;
                }
            }
            SpinCmp::Mismatch(w) => {
                if w.is_some() {
                    self.witness = w;
                }
            }
        }
        let age = state.dyn_count - self.anchor.as_ref().expect("anchored").dyn_count;
        if age >= self.window.saturating_mul(self.grid) {
            self.capture_anchor(state, obs, capture);
            self.window = self.window.saturating_mul(2);
        }
        false
    }

    /// Handles a drift observation at the anchor's site: tracks the last
    /// `(distance, deltas)` per slot signature. Two observations whose
    /// deltas are *proportional through the anchor* — `deltas/dist` equal
    /// as exact rationals, the trace of a linear counter chain sampled at
    /// two period multiples — plus a deep-state match form a candidate
    /// with period `dist - prev.dist`. Wrapping or cyclic shapes (an
    /// inner loop's counter phases) fail proportionality and merely
    /// refresh the track.
    fn observe(
        &mut self,
        state: &ExecState,
        obs: &O,
        diffs: &[(usize, u64, u64)],
        deep_eq: impl FnOnce(&SpinAnchor<O>) -> bool,
    ) {
        let a = self.anchor.as_ref().expect("anchored");
        let dist = state.dyn_count - a.dyn_count;
        let deltas: Vec<i64> = diffs
            .iter()
            .map(|&(_, av, cv)| (cv as i64).wrapping_sub(av as i64))
            .collect();
        let Some(track) = self.sigs.iter_mut().find(|t| {
            t.sig.len() == diffs.len() && t.sig.iter().zip(diffs).all(|(&s, &(i, _, _))| s == i)
        }) else {
            if self.sigs.len() == MAX_SIG_TRACKS {
                self.sigs.remove(0);
            }
            self.sigs.push(SigTrack {
                sig: diffs.iter().map(|&(i, _, _)| i).collect(),
                dist,
                deltas,
                burned: false,
            });
            return;
        };
        if track.burned {
            return;
        }
        let linear =
            track.dist < dist
                && track.deltas.len() == deltas.len()
                && track.deltas.iter().zip(&deltas).all(|(&p, &c)| {
                    (p as i128) * (dist as i128) == (c as i128) * (track.dist as i128)
                });
        if !linear {
            track.dist = dist;
            track.deltas = deltas;
            return;
        }
        let period = dist - track.dist;
        let per: Vec<i64> = deltas
            .iter()
            .zip(&track.deltas)
            .map(|(&c, &p)| c.wrapping_sub(p))
            .collect();
        let confirm_at = state.dyn_count + period;
        if confirm_at >= self.max_dyn || per.contains(&0) {
            track.burned = true;
            return;
        }
        // A candidate is only as good as the rest of the state: the
        // suspended frames and memory must match the anchor here. At a
        // spin's fixpoint they do; pre-fixpoint sweeps fail and burn the
        // track for this anchor (the next re-anchor retries).
        if !deep_eq(a) {
            track.burned = true;
            return;
        }
        let expect: Vec<(usize, i64)> = diffs
            .iter()
            .enumerate()
            .map(|(j, &(i, _, _))| (i, deltas[j].wrapping_add(per[j])))
            .collect();
        let per_period: Vec<(usize, i64)> = diffs
            .iter()
            .zip(per)
            .map(|(&(i, _, _), d)| (i, d))
            .collect();
        self.drift = Some(DriftCand {
            period,
            confirm_at,
            expect,
            per_period,
            obs: obs.clone(),
        });
    }

    /// Marks the signature matching `expect`'s slot set as burned.
    fn burn(&mut self, expect: &[(usize, i64)]) {
        if let Some(t) = self.sigs.iter_mut().find(|t| {
            t.sig.len() == expect.len() && t.sig.iter().zip(expect).all(|(&s, &(i, _))| s == i)
        }) {
            t.burned = true;
        }
    }

    /// Completes a recurrence proof with the given period at the current
    /// boundary: execute the sub-period remainder live (state at
    /// `dyn + rem` equals state at `max_dyn` by mod-period alignment, so
    /// memory/output at the halt are exact), skip the whole cycles.
    fn prove(&mut self, period: u64, state: &ExecState, anchor_obs: O, obs: &O) -> bool {
        let remaining = self.max_dyn - state.dyn_count;
        let cycles = remaining / period;
        let rem = remaining % period;
        self.proof = Some(SpinProof {
            cycles,
            anchor_obs,
            detect_obs: obs.clone(),
        });
        self.halt_at = state.dyn_count + rem;
        rem == 0
    }

    fn capture_anchor(
        &mut self,
        state: &ExecState,
        obs: &O,
        capture: impl FnOnce() -> (Memory, Vec<Frame>),
    ) {
        let (mem, stack) = capture();
        self.anchor = Some(SpinAnchor {
            dyn_count: state.dyn_count,
            check_failures: state.check_failures,
            mem,
            stack,
            obs: obs.clone(),
        });
        self.witness = None;
        self.sigs.clear();
    }
}

/// True when the confirm boundary's observed diffs sit at exactly the
/// candidate's expected anchor-relative deltas, slot for slot.
fn drift_matches(expect: &[(usize, i64)], diffs: &[(usize, u64, u64)]) -> bool {
    expect.len() == diffs.len()
        && expect
            .iter()
            .zip(diffs)
            .all(|(&(i, d), &(j, av, cv))| i == j && (cv as i64).wrapping_sub(av as i64) == d)
}

impl<O> SpinAnchor<O> {
    /// Anchor frames, bottom-to-top (for engine-specific comparison).
    pub(crate) fn stack(&self) -> &[Frame] {
        &self.stack
    }

    /// Anchor memory image.
    pub(crate) fn mem(&self) -> &Memory {
        &self.mem
    }
}

/// The spin core for a converging run: `grid == 0` disables the proof
/// entirely (the escape hatch; behavior is then bit-for-bit the plain
/// convergence engine).
pub(crate) fn spin_core<O: SuffixObserver>(grid: u64, max_dyn: u64) -> Option<SpinCore<O>> {
    (grid > 0).then(|| SpinCore::new(grid, max_dyn))
}

/// Detects *state convergence*: once a trial's full architectural state
/// (memory, frame stack, check-failure count) equals the golden
/// checkpoint at the same boundary — with the fault consumed and control
/// flow intact — the remainder of the run is, by determinism, exactly
/// the golden suffix, so execution can stop and the final result be
/// taken from the golden run. Masked faults (dead-state hits, values
/// overwritten before use) converge within a checkpoint interval or two,
/// turning most trials' cost from `golden - at_dyn` into ~one interval.
///
/// Carries an optional [`SpinCore`] that additionally watches for state
/// *recurrence* — a trial that provably loops forever halts after a few
/// boundary periods instead of spinning to the watchdog bound.
struct ConvergeSink<'a, O> {
    /// Golden checkpoints, sorted by boundary; candidates for matching.
    candidates: &'a [&'a Snapshot],
    /// The executing (transformed) module — consulted by the affine
    /// drift validator when a linear recurrence needs its static check.
    module: &'a Module,
    /// Next candidate not yet behind the execution point.
    idx: usize,
    /// Set once state matched a candidate (the halt boundary).
    converged_at: Option<u64>,
    /// Spin (infinite-loop) proof engine, when enabled.
    spin: Option<SpinCore<O>>,
}

impl<'a, O> ConvergeSink<'a, O> {
    fn new(candidates: &'a [&'a Snapshot], module: &'a Module, spin: Option<SpinCore<O>>) -> Self {
        ConvergeSink {
            candidates,
            module,
            idx: 0,
            converged_at: None,
            spin,
        }
    }

    /// The convergence comparison, exactly as the spin-free engine runs
    /// it (candidate cursor advance included).
    fn converges(&mut self, mem: &Memory, cur: &Frame, below: &[Frame], state: &ExecState) -> bool {
        while self
            .candidates
            .get(self.idx)
            .is_some_and(|c| c.dyn_count < state.dyn_count)
        {
            self.idx += 1;
        }
        let Some(cand) = self.candidates.get(self.idx) else {
            return false;
        };
        if cand.dyn_count != state.dyn_count {
            return false;
        }
        self.idx += 1;
        // The fault must be fully resolved (injected or proven dead) and
        // control flow uncorrupted, or the suffix is not golden-determined.
        if state.fault.is_some() || state.branch_fault_armed.is_some() || state.control_corrupted {
            return false;
        }
        // Cheapest comparisons first; the memory image last.
        if state.check_failures != cand.check_failures
            || below.len() + 1 != cand.stack.len()
            || *cur != cand.stack[cand.stack.len() - 1]
            || below != &cand.stack[..below.len()]
            || *mem != cand.mem
        {
            return false;
        }
        true
    }
}

impl<O: SuffixObserver> Sink<O> for ConvergeSink<'_, O> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &Frame,
        below: &[Frame],
        state: &ExecState,
        obs: &O,
    ) -> bool {
        if let Some(spin) = &self.spin {
            if spin.halt_at() != u64::MAX {
                return state.dyn_count >= spin.halt_at();
            }
        }
        if self.converges(mem, cur, below, state) {
            self.converged_at = Some(state.dyn_count);
            return true;
        }
        if let Some(spin) = &mut self.spin {
            let module = self.module;
            return spin.on_boundary(
                state,
                obs,
                |a, witness| {
                    let anchor = a.stack();
                    if below.len() + 1 != anchor.len() {
                        return SpinCmp::Mismatch(None);
                    }
                    frame_drift(cur, &anchor[anchor.len() - 1], witness)
                },
                |a| {
                    let anchor = a.stack();
                    below == &anchor[..below.len()] && *mem == *a.mem()
                },
                || {
                    let mut stack = below.to_vec();
                    stack.push(cur.clone());
                    (mem.clone(), stack)
                },
                |top, deltas, periods| {
                    crate::affine::affine_spin_sound(
                        &module.functions()[top.func.index()],
                        &top.slots,
                        deltas,
                        periods,
                    )
                },
            );
        }
        false
    }
}

/// Grades the current top frame against the anchor's: [`SpinCmp::Mismatch`]
/// when the frames differ in shape (function, position, leniency,
/// definedness) or in more than [`crate::affine::MAX_DRIFT_SLOTS`] slots
/// — carrying a differing slot index as the next witness when the
/// mismatch was in the slots. Lenient frames never drift: a corrupted
/// control flow voids the SSA assumptions the affine validator rests on.
pub(crate) fn frame_drift(cur: &Frame, anchor: &Frame, witness: Option<usize>) -> SpinCmp {
    if cur.block != anchor.block
        || cur.ip != anchor.ip
        || cur.func != anchor.func
        || cur.lenient != anchor.lenient
        || cur.call_inst != anchor.call_inst
        || cur.slots.len() != anchor.slots.len()
    {
        return SpinCmp::Mismatch(None);
    }
    // O(1) witness: a slot that differed last time usually still does.
    if let Some(w) = witness {
        if cur.slots.get(w) != anchor.slots.get(w) {
            return SpinCmp::Mismatch(Some(w));
        }
    }
    let mut diffs = Vec::new();
    for (i, (c, a)) in cur.slots.iter().zip(&anchor.slots).enumerate() {
        if c != a {
            let (&Some(av), &Some(cv)) = (a, c) else {
                return SpinCmp::Mismatch(Some(i));
            };
            if cur.lenient || diffs.len() == crate::affine::MAX_DRIFT_SLOTS {
                return SpinCmp::Mismatch(Some(i));
            }
            diffs.push((i, av, cv));
        }
    }
    if diffs.is_empty() {
        SpinCmp::Equal
    } else {
        SpinCmp::Drift(diffs)
    }
}

/// How the machine loop ended: an ordinary top-level return, or a halt
/// requested by the boundary sink (state convergence).
pub(crate) enum MachineEnd {
    Ret(Option<u64>),
    Halted,
}

/// Outcome of a converging run ([`Vm::resume_converging`] /
/// [`Vm::run_converging`]).
#[derive(Clone, Debug)]
pub enum ConvergeOutcome {
    /// The run ended on its own (completed or trapped); nothing skipped.
    Done(RunResult),
    /// The trial's state matched the golden checkpoint at boundary `at`:
    /// the rest of the run is exactly the golden suffix. The caller
    /// substitutes the golden run's final result (and fast-forwards the
    /// observer over the suffix via [`SuffixObserver`]).
    Converged {
        /// The checkpoint boundary where state converged.
        at: u64,
        /// Dynamic instructions this call actually executed.
        executed: u64,
        /// The trial's own injection record (the golden run has none).
        injection: Option<InjectionRecord>,
    },
    /// The trial's state *recurred* at two boundaries with the fault
    /// consumed: by determinism it loops forever and can only end in the
    /// watchdog trap. `result` is bitwise identical to what running to
    /// the dynamic-instruction bound would have produced (trap at the
    /// bound, golden-equal memory at the halt boundary); the observer has
    /// already absorbed the skipped periods via
    /// [`SuffixObserver::fold_cycles`].
    SpinProven {
        /// The synthesized watchdog result (identical to the un-proved
        /// engine's).
        result: RunResult,
        /// Dynamic instructions this call actually executed.
        executed: u64,
    },
}

pub(crate) fn finish_converging<O: SuffixObserver>(
    machine: Result<MachineEnd, TrapKind>,
    state: ExecState,
    start: u64,
    spin: Option<SpinCore<O>>,
    obs: &mut O,
    max_dyn: u64,
) -> ConvergeOutcome {
    if matches!(machine, Ok(MachineEnd::Halted)) {
        if let Some(proof) = spin.and_then(|mut s| s.take_proof()) {
            // The machine halted at the spin boundary: fold the skipped
            // whole periods into the observer and synthesize the exact
            // watchdog result. The live remainder already positioned the
            // observer (and memory) at the state of the final partial
            // period, so counters land bitwise on the unproved values.
            obs.fold_cycles(&proof.anchor_obs, &proof.detect_obs, proof.cycles);
            return ConvergeOutcome::SpinProven {
                result: RunResult {
                    end: RunEnd::Trap {
                        kind: TrapKind::Watchdog,
                        at_dyn: max_dyn,
                    },
                    dyn_insts: max_dyn,
                    injection: state.injection,
                    check_failures: state.check_failures,
                },
                executed: state.dyn_count - start,
            };
        }
    }
    match machine {
        Ok(MachineEnd::Halted) => ConvergeOutcome::Converged {
            at: state.dyn_count,
            executed: state.dyn_count - start,
            injection: state.injection,
        },
        Ok(MachineEnd::Ret(ret)) => ConvergeOutcome::Done(RunResult {
            end: RunEnd::Completed { ret },
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }),
        Err(kind) => ConvergeOutcome::Done(RunResult {
            end: RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }),
    }
}

/// What a register fault plan would do at its trigger, resolved
/// statically against the golden run (see
/// [`Vm::run_recording_resolving`]). Because a trial replays the golden
/// prefix bit-for-bit up to the trigger, the victim/bit choice observed
/// during the recording run is exactly the choice the trial would make —
/// campaigns use this to decide *before executing* whether the flip is
/// provably dead or masked and skip the trial entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Resolution {
    /// No slot was defined at the trigger (or the trigger lies past the
    /// end of the run): the plan injects nothing and the trial is the
    /// golden run.
    NoCandidates,
    /// The exact injection the trial would perform.
    Register {
        /// The injection record, bitwise identical to the one the trial
        /// would produce.
        rec: InjectionRecord,
        /// Block of the program point the flip lands at.
        block: BlockId,
        /// Instruction index within `block` (phi prefix included) of the
        /// next instruction to execute — liveness queries start here.
        ip: usize,
    },
}

/// Resolves one register fault plan against the machine state at its
/// trigger boundary: re-runs the injector's victim/bit choice over the
/// same candidate enumeration [`ExecState::maybe_inject`] uses, without
/// mutating anything.
pub(crate) fn resolve_frame(frame: &Frame, func: &Function, plan: &FaultPlan) -> Resolution {
    debug_assert_eq!(plan.kind, FaultKind::Register);
    let mut inj = FaultInjector::new(plan);
    let candidates: Vec<usize> = frame
        .slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|_| i))
        .collect();
    match inj.choose(&candidates) {
        None => Resolution::NoCandidates,
        Some(victim) => {
            let vid = ValueId::new(victim);
            let ty = func.value_type(vid);
            let bit = inj.choose_bit(ty);
            let old = frame.slots[victim].expect("candidate is defined");
            let new = flip_bit(old, ty, bit);
            Resolution::Register {
                rec: InjectionRecord::register(
                    plan.at_dyn,
                    frame.func,
                    vid,
                    ty,
                    bit,
                    old,
                    new,
                    func.def_inst(vid),
                ),
                block: frame.block,
                ip: frame.ip,
            }
        }
    }
}

/// [`EveryK`] plus trigger resolution: captures snapshots at interval
/// boundaries (`interval == 0` captures none) and, at each boundary whose
/// `dyn_count` matches the next pending trigger, resolves that plan's
/// injection against the live frame.
struct RecordResolve<'a, F> {
    interval: u64,
    f: &'a mut F,
    module: &'a Module,
    /// Register fault plans sorted ascending by `at_dyn`.
    triggers: &'a [FaultPlan],
    next: usize,
    /// Resolutions, parallel to `triggers[..next]`.
    out: &'a mut Vec<Resolution>,
}

impl<O: Observer, F: FnMut(Snapshot, &O)> Sink<O> for RecordResolve<'_, F> {
    fn at_boundary(
        &mut self,
        mem: &Memory,
        cur: &Frame,
        below: &[Frame],
        state: &ExecState,
        obs: &O,
    ) -> bool {
        while self
            .triggers
            .get(self.next)
            .is_some_and(|p| p.at_dyn == state.dyn_count)
        {
            let func = self.module.function(cur.func);
            self.out
                .push(resolve_frame(cur, func, &self.triggers[self.next]));
            self.next += 1;
        }
        if self.interval != 0
            && state.dyn_count != 0
            && state.dyn_count.is_multiple_of(self.interval)
        {
            let mut stack = below.to_vec();
            stack.push(cur.clone());
            (self.f)(
                Snapshot {
                    dyn_count: state.dyn_count,
                    check_failures: state.check_failures,
                    mem: mem.clone(),
                    stack,
                },
                obs,
            );
        }
        false
    }
}

pub(crate) struct ExecState {
    pub(crate) dyn_count: u64,
    pub(crate) fault: Option<(FaultPlan, FaultInjector)>,
    pub(crate) injection: Option<InjectionRecord>,
    pub(crate) check_failures: u64,
    /// Set when a branch-target fault is due: the next executed branch
    /// jumps to a random block of its function.
    pub(crate) branch_fault_armed: Option<(FaultPlan, FaultInjector)>,
    /// Set once control flow was corrupted: reads of never-written SSA
    /// slots then yield stale zeros instead of asserting (a wrongly
    /// reached block sees whatever garbage the registers hold).
    pub(crate) control_corrupted: bool,
}

impl ExecState {
    pub(crate) fn new(fault: Option<FaultPlan>) -> Self {
        ExecState {
            dyn_count: 0,
            fault: fault.map(|p| (p, FaultInjector::new(&p))),
            injection: None,
            check_failures: 0,
            branch_fault_armed: None,
            control_corrupted: false,
        }
    }

    /// If the fault trigger is reached, flip a bit in a random defined
    /// slot of `frame`.
    fn maybe_inject<O: Observer>(&mut self, frame: &mut Frame, func: &Function, obs: &mut O) {
        let due = matches!(&self.fault, Some((plan, _)) if plan.at_dyn == self.dyn_count);
        if !due {
            return;
        }
        let (plan, mut inj) = self.fault.take().expect("fault present");
        if plan.kind == FaultKind::BranchTarget {
            // Corrupt the next branch executed rather than a register.
            self.branch_fault_armed = Some((plan, inj));
            return;
        }
        let candidates: Vec<usize> = frame
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if let Some(victim) = inj.choose(&candidates) {
            let vid = ValueId::new(victim);
            let ty = func.value_type(vid);
            let bit = inj.choose_bit(ty);
            let old = frame.slots[victim].expect("candidate is defined");
            let new = flip_bit(old, ty, bit);
            frame.slots[victim] = Some(new);
            let rec = InjectionRecord::register(
                plan.at_dyn,
                frame.func,
                vid,
                ty,
                bit,
                old,
                new,
                func.def_inst(vid),
            );
            obs.on_inject(&rec);
            self.injection = Some(rec);
        }
        // If no slot was defined yet the fault hit dead state: masked.
    }
}

/// The interpreter.
///
/// A `Vm` owns the linear [`Memory`] for one module; [`Vm::run`] executes
/// an entry function to completion or trap. Memory persists across runs so
/// harnesses can write inputs before and read outputs after; use
/// [`Vm::reset_memory`] between independent runs.
pub struct Vm<'m> {
    pub(crate) module: &'m Module,
    /// Linear memory (public: harnesses preload inputs / read outputs).
    pub mem: Memory,
    pub(crate) config: VmConfig,
    /// The module lowered to flat bytecode — decoded once, shared
    /// read-only (campaign workers pass one `Arc` to every trial VM via
    /// [`Vm::with_decoded`]).
    pub(crate) decoded: Arc<DecodedModule>,
    /// Reusable frame arena and call/phi scratch buffers.
    pub(crate) scratch: Scratch,
    /// Execution profiler, present iff [`VmConfig::profiling`] is set.
    /// Boxed so the disabled case costs one pointer; accumulates across
    /// runs of this VM.
    pub(crate) profiler: Option<Box<VmProfiler>>,
}

/// The profiler for `config`: allocated only when profiling is enabled.
fn profiler_for(config: VmConfig) -> Option<Box<VmProfiler>> {
    config.profiling.then(|| Box::new(VmProfiler::new()))
}

impl<'m> Vm<'m> {
    /// Creates a VM with fresh memory for `module`.
    pub fn new(module: &'m Module, config: VmConfig) -> Self {
        Vm {
            mem: Memory::for_module(module, config.mem_slack),
            module,
            config,
            decoded: Arc::new(DecodedModule::decode(module)),
            scratch: Scratch::default(),
            profiler: profiler_for(config),
        }
    }

    /// Creates a VM over a prebuilt memory image (e.g. a pristine
    /// globals+input image cloned once per trial, instead of re-running
    /// [`Memory::for_module`] initializer copying inside every trial).
    pub fn with_memory(module: &'m Module, config: VmConfig, mem: Memory) -> Self {
        Vm {
            decoded: Arc::new(DecodedModule::decode(module)),
            module,
            mem,
            config,
            scratch: Scratch::default(),
            profiler: profiler_for(config),
        }
    }

    /// Like [`Vm::with_memory`], but reusing an already-decoded module
    /// image instead of decoding again — the campaign path, where one
    /// decode is amortized over thousands of trial VMs.
    ///
    /// `decoded` must come from [`DecodedModule::decode`] of this exact
    /// `module`.
    pub fn with_decoded(
        module: &'m Module,
        config: VmConfig,
        mem: Memory,
        decoded: Arc<DecodedModule>,
    ) -> Self {
        Vm {
            module,
            mem,
            config,
            decoded,
            scratch: Scratch::default(),
            profiler: profiler_for(config),
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// The execution profiler, if [`VmConfig::profiling`] is enabled.
    /// Counters accumulate across every run of this VM.
    pub fn profiler(&self) -> Option<&VmProfiler> {
        self.profiler.as_deref()
    }

    /// Takes the profiler out of the VM (subsequent runs are unprofiled).
    pub fn take_profiler(&mut self) -> Option<Box<VmProfiler>> {
        self.profiler.take()
    }

    /// Marks a run boundary for the profiler (digram chains and the
    /// sampling clock must not span runs).
    fn begin_profiled_run(&mut self) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.begin_run();
        }
    }

    /// Reinitializes memory from the module's global initializers.
    pub fn reset_memory(&mut self) {
        self.mem = Memory::for_module(self.module, self.config.mem_slack);
    }

    /// Runs `entry` with integer/float `args` given as canonical bits.
    ///
    /// `fault`, when supplied, injects a single bit flip per
    /// [`FaultPlan`]. The run never panics on guest misbehaviour — all
    /// guest errors surface as traps in the result.
    pub fn run<O: Observer>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> RunResult {
        self.begin_profiled_run();
        match self.config.effective_engine() {
            Engine::Tree => self.run_inner(entry, args, obs, fault, &mut NoSink),
            Engine::Decoded => self.run_decoded(entry, args, obs, fault, &mut DNoSink),
            Engine::Fused => self.run_fused(entry, args, obs, fault, &mut DNoSink),
        }
    }

    /// Runs `entry` fault-free while capturing a [`Snapshot`] every
    /// `interval` dynamic instructions. `on_checkpoint` receives each
    /// snapshot together with the observer's state *at the capture
    /// boundary* — campaigns clone it so resumed trials start with
    /// prefix-identical observer state.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn run_recording<O: Observer>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        interval: u64,
        mut on_checkpoint: impl FnMut(Snapshot, &O),
    ) -> RunResult {
        assert!(interval > 0, "snapshot interval must be positive");
        self.begin_profiled_run();
        match self.config.effective_engine() {
            Engine::Tree => self.run_inner(
                entry,
                args,
                obs,
                None,
                &mut EveryK {
                    interval,
                    f: &mut on_checkpoint,
                },
            ),
            Engine::Decoded => self.run_decoded(
                entry,
                args,
                obs,
                None,
                &mut DEveryK {
                    interval,
                    f: &mut on_checkpoint,
                },
            ),
            Engine::Fused => self.run_fused(
                entry,
                args,
                obs,
                None,
                &mut DEveryK {
                    interval,
                    f: &mut on_checkpoint,
                },
            ),
        }
    }

    /// Like [`Vm::run_recording`], but additionally resolves each register
    /// fault plan in `triggers` (sorted ascending by `at_dyn`) against the
    /// live machine state at its trigger boundary, returning one
    /// [`Resolution`] per plan. An `interval` of zero skips checkpoint
    /// capture entirely and only resolves — used when the campaign's
    /// snapshots were already recorded but pruning still needs the
    /// victim/bit choices.
    ///
    /// Because trials replay the golden prefix bit-for-bit up to their
    /// trigger, each returned injection record is exactly the record the
    /// corresponding trial would produce. Triggers at or past the end of
    /// the run resolve to [`Resolution::NoCandidates`] (the trial never
    /// reaches them and injects nothing).
    pub fn run_recording_resolving<O: Observer>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        interval: u64,
        triggers: &[FaultPlan],
        mut on_checkpoint: impl FnMut(Snapshot, &O),
    ) -> (RunResult, Vec<Resolution>) {
        debug_assert!(triggers.windows(2).all(|w| w[0].at_dyn <= w[1].at_dyn));
        debug_assert!(triggers.iter().all(|p| p.kind == FaultKind::Register));
        self.begin_profiled_run();
        let module = self.module;
        let mut out: Vec<Resolution> = Vec::with_capacity(triggers.len());
        let result = match self.config.effective_engine() {
            Engine::Tree => self.run_inner(
                entry,
                args,
                obs,
                None,
                &mut RecordResolve {
                    interval,
                    f: &mut on_checkpoint,
                    module,
                    triggers,
                    next: 0,
                    out: &mut out,
                },
            ),
            Engine::Decoded => self.run_decoded(
                entry,
                args,
                obs,
                None,
                &mut crate::decode::DRecordResolve {
                    interval,
                    f: &mut on_checkpoint,
                    module,
                    triggers,
                    next: 0,
                    out: &mut out,
                },
            ),
            Engine::Fused => self.run_fused(
                entry,
                args,
                obs,
                None,
                &mut crate::decode::DRecordResolve {
                    interval,
                    f: &mut on_checkpoint,
                    module,
                    triggers,
                    next: 0,
                    out: &mut out,
                },
            ),
        };
        out.resize(triggers.len(), Resolution::NoCandidates);
        (result, out)
    }

    /// Resumes execution from `snap`, replacing this VM's memory with the
    /// snapshot image. The result is bitwise identical to a fresh
    /// [`Vm::run`] with the same `fault`, provided the snapshot was taken
    /// from a fault-free run of the same entry/args and
    /// `fault.at_dyn >= snap.dyn_count()`.
    ///
    /// # Panics
    ///
    /// Panics if the fault trigger predates the snapshot boundary.
    pub fn resume_from<O: Observer>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> RunResult {
        if let Some(plan) = &fault {
            assert!(
                plan.at_dyn >= snap.dyn_count,
                "fault trigger {} predates snapshot boundary {}",
                plan.at_dyn,
                snap.dyn_count
            );
        }
        self.begin_profiled_run();
        match self.config.effective_engine() {
            Engine::Tree => {}
            Engine::Decoded => return self.resume_decoded(snap, obs, fault),
            Engine::Fused => return self.resume_fused(snap, obs, fault),
        }
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let mut stack = snap.stack.clone();
        let mut cur = stack.pop().expect("snapshot has at least one frame");
        let end = match self.exec_machine(&mut cur, &mut stack, &mut state, obs, &mut NoSink) {
            Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
            Ok(MachineEnd::Halted) => unreachable!("NoSink never halts"),
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
        };
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    /// Like [`Vm::resume_from`], but additionally watches for *state
    /// convergence* against `candidates` — golden checkpoints from the
    /// same recording run that produced `snap`, sorted by boundary. If
    /// the trial's full architectural state ever equals a candidate's
    /// (fault consumed, control flow intact), the rest of the run is
    /// exactly the golden suffix, so execution halts and
    /// [`ConvergeOutcome::Converged`] reports the boundary; the caller
    /// substitutes the golden run's final result.
    ///
    /// `spin_grid`, when positive, additionally arms the spin proof: the
    /// trial's state is compared against a windowed anchor at every
    /// multiple of `spin_grid` (normally the checkpoint interval), and a
    /// full-state recurrence halts the run with
    /// [`ConvergeOutcome::SpinProven`] — the synthesized watchdog result
    /// is bitwise identical to running to the bound. `0` disables the
    /// proof (bit-for-bit the plain convergence engine).
    ///
    /// # Panics
    ///
    /// Panics if the fault trigger predates the snapshot boundary.
    pub fn resume_converging<O: SuffixObserver>(
        &mut self,
        snap: &Snapshot,
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        if let Some(plan) = &fault {
            assert!(
                plan.at_dyn >= snap.dyn_count,
                "fault trigger {} predates snapshot boundary {}",
                plan.at_dyn,
                snap.dyn_count
            );
        }
        self.begin_profiled_run();
        match self.config.effective_engine() {
            Engine::Tree => {}
            Engine::Decoded => {
                return self.resume_converging_decoded(snap, obs, fault, candidates, spin_grid)
            }
            Engine::Fused => {
                return self.resume_converging_fused(snap, obs, fault, candidates, spin_grid)
            }
        }
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        state.dyn_count = snap.dyn_count;
        state.check_failures = snap.check_failures;
        self.mem.clone_from(&snap.mem);
        let mut stack = snap.stack.clone();
        let mut cur = stack.pop().expect("snapshot has at least one frame");
        let mut sink = ConvergeSink::new(candidates, self.module, spin_core(spin_grid, max_dyn));
        let machine = self.exec_machine(&mut cur, &mut stack, &mut state, obs, &mut sink);
        finish_converging(
            machine,
            state,
            snap.dyn_count,
            sink.spin.take(),
            obs,
            max_dyn,
        )
    }

    /// Like [`Vm::run`] (from instruction 0), but with the same
    /// convergence early-exit (and optional spin proof, see
    /// [`Vm::resume_converging`]) — for trials whose trigger falls
    /// before the first checkpoint.
    pub fn run_converging<O: SuffixObserver>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        candidates: &[&Snapshot],
        spin_grid: u64,
    ) -> ConvergeOutcome {
        self.begin_profiled_run();
        match self.config.effective_engine() {
            Engine::Tree => {}
            Engine::Decoded => {
                return self.run_converging_decoded(entry, args, obs, fault, candidates, spin_grid)
            }
            Engine::Fused => {
                return self.run_converging_fused(entry, args, obs, fault, candidates, spin_grid)
            }
        }
        let max_dyn = self.config.max_dyn_insts;
        let mut state = ExecState::new(fault);
        let mut stack: Vec<Frame> = Vec::new();
        let mut sink = ConvergeSink::new(candidates, self.module, spin_core(spin_grid, max_dyn));
        let machine = match self.new_frame(entry, args, 0, obs) {
            Err(kind) => Err(kind),
            Ok(mut cur) => self.exec_machine(&mut cur, &mut stack, &mut state, obs, &mut sink),
        };
        finish_converging(machine, state, 0, sink.spin.take(), obs, max_dyn)
    }

    fn run_inner<O: Observer, S: Sink<O>>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
        sink: &mut S,
    ) -> RunResult {
        let mut state = ExecState::new(fault);
        let mut stack: Vec<Frame> = Vec::new();
        let end = match self.new_frame(entry, args, 0, obs) {
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
            Ok(mut cur) => match self.exec_machine(&mut cur, &mut stack, &mut state, obs, sink) {
                Ok(MachineEnd::Ret(ret)) => RunEnd::Completed { ret },
                Ok(MachineEnd::Halted) => unreachable!("run sinks never halt"),
                Err(kind) => RunEnd::Trap {
                    kind,
                    at_dyn: state.dyn_count,
                },
            },
        };
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    /// Builds the activation record for `fid`, canonicalizing arguments
    /// into parameter slots. `depth` is the number of frames below it.
    fn new_frame<O: Observer>(
        &self,
        fid: FuncId,
        args: &[u64],
        depth: u32,
        obs: &mut O,
    ) -> Result<Frame, TrapKind> {
        if depth >= self.config.max_call_depth {
            return Err(TrapKind::CallDepth);
        }
        let func = self.module.function(fid);
        assert_eq!(
            args.len(),
            func.params.len(),
            "arity mismatch calling {}",
            func.name
        );
        let mut frame = Frame {
            func: fid,
            slots: vec![None; func.num_values()],
            lenient: false,
            block: func.entry(),
            ip: 0,
            call_inst: None,
        };
        for (i, &a) in args.iter().enumerate() {
            let p = func.param(i);
            let ty = func.value_type(p);
            let canon = if ty.is_float() {
                a
            } else {
                ty.sign_extend(a) as u64
            };
            frame.slots[p.index()] = Some(canon);
        }
        obs.on_enter(fid, func);
        let insts = &func.block(frame.block).insts;
        frame.ip = insts
            .iter()
            .position(|&i| !func.inst(i).op.is_phi())
            .unwrap_or(insts.len());
        Ok(frame)
    }

    /// The machine loop. `cur` is the executing frame, `stack` the
    /// suspended frames below it (callers). Each dynamic-instruction
    /// boundary runs, in order: boundary sink (may halt) → fault trigger →
    /// watchdog → count → observer → execute.
    fn exec_machine<O: Observer, S: Sink<O>>(
        &mut self,
        cur: &mut Frame,
        stack: &mut Vec<Frame>,
        state: &mut ExecState,
        obs: &mut O,
        sink: &mut S,
    ) -> Result<MachineEnd, TrapKind> {
        let module = self.module;
        'frames: loop {
            let fid = cur.func;
            let func = module.function(fid);
            loop {
                let insts: &[InstId] = &func.block(cur.block).insts;
                while cur.ip < insts.len() {
                    let i = insts[cur.ip];
                    let inst = func.inst(i);
                    debug_assert!(!inst.dead, "dead instruction linked");
                    if sink.at_boundary(&self.mem, cur, stack, state, obs) {
                        return Ok(MachineEnd::Halted);
                    }
                    state.maybe_inject(cur, func, obs);
                    if state.dyn_count >= self.config.max_dyn_insts {
                        return Err(TrapKind::Watchdog);
                    }
                    state.dyn_count += 1;
                    obs.on_exec(fid, func, i);
                    if let Some(p) = self.profiler.as_deref_mut() {
                        p.record(OpClass::of_op(&inst.op));
                    }
                    cur.ip += 1;

                    match &inst.op {
                        Op::Call { func: callee, args } => {
                            let argv: Vec<u64> =
                                args.iter().map(|&a| value_bits(func, cur, a)).collect();
                            let callee_frame =
                                self.new_frame(*callee, &argv, stack.len() as u32 + 1, obs)?;
                            cur.call_inst = Some(i);
                            stack.push(std::mem::replace(cur, callee_frame));
                            continue 'frames;
                        }
                        Op::Store { addr, value } => {
                            let a = value_bits(func, cur, *addr) as i64;
                            let v = value_bits(func, cur, *value);
                            let ty = func.value_type(*value);
                            self.mem.store(a, ty, v)?;
                        }
                        Op::Check { cond, kind } => {
                            let c = value_bits(func, cur, *cond);
                            if c & 1 == 0 {
                                obs.on_check_fail(fid, func, i);
                                if self.config.checks_count_only {
                                    state.check_failures += 1;
                                } else {
                                    return Err(TrapKind::SwDetect(*kind));
                                }
                            }
                        }
                        op => {
                            let r = inst.result.expect("pure op has a result");
                            let ty = func.value_type(r);
                            let bits = self.eval_pure(func, cur, op, ty)?;
                            cur.slots[r.index()] = Some(bits);
                            obs.on_result(fid, func, i, ty, bits);
                        }
                    }
                }

                // Terminator boundary.
                if sink.at_boundary(&self.mem, cur, stack, state, obs) {
                    return Ok(MachineEnd::Halted);
                }
                state.maybe_inject(cur, func, obs);
                if state.dyn_count >= self.config.max_dyn_insts {
                    return Err(TrapKind::Watchdog);
                }
                state.dyn_count += 1;
                obs.on_term(fid, func, cur.block);
                let term = func
                    .block(cur.block)
                    .term
                    .as_ref()
                    .expect("verified function has terminators");
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.record(OpClass::of_term(term));
                }
                match term {
                    Term::Br(t) => take_edge(fid, func, cur, *t, state, obs),
                    Term::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = value_bits(func, cur, *cond);
                        let t = if c & 1 == 1 { *then_bb } else { *else_bb };
                        take_edge(fid, func, cur, t, state, obs);
                    }
                    Term::Ret(v) => {
                        let ret = v.map(|v| value_bits(func, cur, v));
                        obs.on_exit(fid);
                        let Some(caller) = stack.pop() else {
                            return Ok(MachineEnd::Ret(ret));
                        };
                        *cur = caller;
                        let caller_func = module.function(cur.func);
                        let i = cur.call_inst.take().expect("returning to a call site");
                        let inst = caller_func.inst(i);
                        if let Some(r) = inst.result {
                            let bits = ret.expect("verified call returns a value");
                            cur.slots[r.index()] = Some(bits);
                            obs.on_result(
                                cur.func,
                                caller_func,
                                i,
                                caller_func.value_type(r),
                                bits,
                            );
                        }
                        continue 'frames;
                    }
                }
            }
        }
    }

    fn eval_pure(
        &self,
        func: &Function,
        frame: &Frame,
        op: &Op,
        result_ty: Type,
    ) -> Result<u64, TrapKind> {
        let val = |v: ValueId| value_bits(func, frame, v);
        let ity = |v: ValueId| func.value_type(v);
        Ok(match op {
            Op::Bin { op, lhs, rhs } => {
                let ty = ity(*lhs);
                if op.is_float() {
                    let a = f64::from_bits(val(*lhs));
                    let b = f64::from_bits(val(*rhs));
                    let r = match op {
                        BinOp::FAdd => a + b,
                        BinOp::FSub => a - b,
                        BinOp::FMul => a * b,
                        BinOp::FDiv => a / b,
                        _ => unreachable!("float op"),
                    };
                    r.to_bits()
                } else {
                    let a = val(*lhs) as i64;
                    let b = val(*rhs) as i64;
                    let mask = if ty.bits() == 64 {
                        u64::MAX
                    } else {
                        (1u64 << ty.bits()) - 1
                    };
                    let ua = (a as u64) & mask;
                    let ub = (b as u64) & mask;
                    let r: i64 = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::SDiv => {
                            if b == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::SRem => {
                            if b == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::UDiv => {
                            if ub == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            (ua / ub) as i64
                        }
                        BinOp::URem => {
                            if ub == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            (ua % ub) as i64
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => {
                            let amt = (b as u64) % ty.bits() as u64;
                            a.wrapping_shl(amt as u32)
                        }
                        BinOp::LShr => {
                            let amt = (b as u64) % ty.bits() as u64;
                            (ua >> amt) as i64
                        }
                        BinOp::AShr => {
                            let amt = (b as u64) % ty.bits() as u64;
                            a.wrapping_shr(amt as u32)
                        }
                        _ => unreachable!("int op"),
                    };
                    ty.canon(r) as u64
                }
            }
            Op::Un { op, arg } => {
                let a = f64::from_bits(val(*arg));
                let r = match op {
                    UnOp::FSqrt => a.sqrt(),
                    UnOp::FAbs => a.abs(),
                    UnOp::FFloor => a.floor(),
                    UnOp::FNeg => -a,
                };
                r.to_bits()
            }
            Op::Icmp { pred, lhs, rhs } => {
                let ty = ity(*lhs);
                let a = val(*lhs) as i64;
                let b = val(*rhs) as i64;
                let mask = if ty.bits() == 64 {
                    u64::MAX
                } else {
                    (1u64 << ty.bits()) - 1
                };
                let (ua, ub) = ((a as u64) & mask, (b as u64) & mask);
                let r = match pred {
                    IntCC::Eq => a == b,
                    IntCC::Ne => a != b,
                    IntCC::Slt => a < b,
                    IntCC::Sle => a <= b,
                    IntCC::Sgt => a > b,
                    IntCC::Sge => a >= b,
                    IntCC::Ult => ua < ub,
                    IntCC::Ule => ua <= ub,
                    IntCC::Ugt => ua > ub,
                    IntCC::Uge => ua >= ub,
                };
                r as u64
            }
            Op::Fcmp { pred, lhs, rhs } => {
                let a = f64::from_bits(val(*lhs));
                let b = f64::from_bits(val(*rhs));
                let r = match pred {
                    FloatCC::Eq => a == b,
                    FloatCC::Ne => a != b,
                    FloatCC::Lt => a < b,
                    FloatCC::Le => a <= b,
                    FloatCC::Gt => a > b,
                    FloatCC::Ge => a >= b,
                };
                r as u64
            }
            Op::Cast { kind, arg } => {
                let src_ty = ity(*arg);
                let a = val(*arg);
                match kind {
                    CastKind::Trunc => result_ty.sign_extend(a) as u64,
                    CastKind::SExt => a, // canonical form is already extended
                    CastKind::ZExt => {
                        let mask = if src_ty.bits() == 64 {
                            u64::MAX
                        } else {
                            (1u64 << src_ty.bits()) - 1
                        };
                        a & mask
                    }
                    CastKind::FpToSi => {
                        let f = f64::from_bits(a);
                        let v = f as i64; // saturating in Rust
                        result_ty.canon(v) as u64
                    }
                    CastKind::SiToFp => ((a as i64) as f64).to_bits(),
                }
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                if val(*cond) & 1 == 1 {
                    val(*on_true)
                } else {
                    val(*on_false)
                }
            }
            Op::Load { addr } => {
                let a = val(*addr) as i64;
                self.mem.load(a, result_ty)?
            }
            Op::Store { .. } | Op::Call { .. } | Op::Phi { .. } | Op::Check { .. } => {
                unreachable!("handled by the main loop")
            }
        })
    }
}

/// Transfers `cur` to `target`: applies a pending branch-target fault,
/// runs the target block's phis with parallel-copy semantics (read all,
/// then write all), and positions `ip` at the first non-phi instruction.
fn take_edge<O: Observer>(
    fid: FuncId,
    func: &Function,
    cur: &mut Frame,
    mut target: BlockId,
    state: &mut ExecState,
    obs: &mut O,
) {
    let prev = cur.block;
    // A pending branch-target fault corrupts this transfer: the branch
    // lands on a random block of the function instead.
    if let Some((plan, mut inj)) = state.branch_fault_armed.take() {
        let victim = inj.choose_block(func.num_blocks());
        let intended = target;
        target = BlockId::new(victim);
        cur.lenient = true;
        state.control_corrupted = true;
        let rec = InjectionRecord::branch(plan.at_dyn, fid, intended, BlockId::new(victim));
        obs.on_inject(&rec);
        state.injection = Some(rec);
    }
    let insts = &func.block(target).insts;
    let mut first_non_phi = insts.len();
    let mut writes: Vec<(usize, u64)> = Vec::new();
    for (idx, &i) in insts.iter().enumerate() {
        let inst = func.inst(i);
        let Op::Phi { incomings } = &inst.op else {
            first_non_phi = idx;
            break;
        };
        let incoming = incomings.iter().find(|(p, _)| *p == prev);
        let Some((_, v)) = incoming else {
            // Only reachable after a branch-target fault: the edge does
            // not exist in the CFG, so the phi's "register" keeps its
            // stale value.
            assert!(
                cur.lenient,
                "phi {i} in {target} of {} lacks incoming for {prev}",
                func.name
            );
            continue;
        };
        let bits = value_bits(func, cur, *v);
        let r = inst.result.expect("phi has result");
        obs.on_phi(fid, func, i, *v);
        writes.push((r.index(), bits));
    }
    for (slot, bits) in writes {
        cur.slots[slot] = Some(bits);
    }
    cur.block = target;
    cur.ip = first_non_phi;
}

#[inline]
fn value_bits(func: &Function, frame: &Frame, v: ValueId) -> u64 {
    match func.value(v).kind {
        ValueKind::Const(c) => c.bits(),
        _ => match frame.slots[v.index()] {
            Some(bits) => bits,
            // Reads of never-written slots are only legal after a
            // branch-target fault tore up SSA liveness; the register
            // then holds unspecified (modelled as zero) garbage.
            None => {
                assert!(frame.lenient, "SSA: use before def");
                0
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::module::GLOBAL_BASE;
    use softft_ir::CheckKind;

    fn run_main(m: &Module) -> RunResult {
        let main = m.function_by_name("main").expect("main exists");
        let mut vm = Vm::new(m, VmConfig::default());
        vm.run(main, &[], &mut NoopObserver, None)
    }

    #[test]
    fn arithmetic_kernel_returns_sum() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(1), d.i64c(101));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits(), Some(5050));
    }

    #[test]
    fn narrow_types_wrap() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.iconst(Type::I8, 120);
            let b = d.iconst(Type::I8, 100);
            let s = d.add(a, b); // 220 wraps to -36 in i8
            let w = d.sext(s, Type::I64);
            d.ret(Some(w));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits().map(|b| b as i64), Some(-36));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(10);
            let b = d.i64c(0);
            let q = d.sdiv(a, b);
            d.ret(Some(q));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::DivByZero,
                ..
            }
        ));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Module::new("m");
        m.add_global("buf", 16);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(8); // below GLOBAL_BASE: guard page
            let v = d.load(Type::I64, a);
            d.ret(Some(v));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::OutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let one = d.iconst(Type::I1, 1);
            d.while_(|_| one, |_| {});
            let z = d.i64c(0);
            d.ret(Some(z));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(
            &m,
            VmConfig {
                max_dyn_insts: 10_000,
                ..VmConfig::default()
            },
        );
        let r = vm.run(main, &[], &mut NoopObserver, None);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::Watchdog,
                ..
            }
        ));
    }

    #[test]
    fn check_instruction_traps_when_false() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(5);
            let b = d.i64c(6);
            let eq = d.icmp(IntCC::Eq, a, b);
            d.check(eq, CheckKind::ValueSingle);
            d.ret(Some(a));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::SwDetect(CheckKind::ValueSingle),
                ..
            }
        ));
    }

    #[test]
    fn memory_roundtrip_through_globals() {
        let mut m = Module::new("m");
        let g = m.add_global("data", 64);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let (s, e) = (d.i64c(0), d.i64c(8));
            d.for_range(s, e, |d, i| {
                let v = d.mul(i, i);
                d.store_elem(b, i, v);
            });
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            d.for_range(s, e, |d, i| {
                let v = d.load_elem(Type::I64, b, i);
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        // Σ i² for 0..8 = 140
        assert_eq!(run_main(&m).return_bits(), Some(140));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut m = Module::new("m");
        let sq = FunctionDsl::build("square", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let r = d.mul(p, p);
            d.ret(Some(r));
        });
        let sq_id = m.add_function(sq);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let x = d.i64c(9);
            let r = d.call(sq_id, &[x], Some(Type::I64)).unwrap();
            d.ret(Some(r));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits(), Some(81));
    }

    #[test]
    fn recursion_depth_traps() {
        let mut m = Module::new("m");
        // Build a self-recursive function by pre-reserving its id (0).
        let fid = FuncId::new(0);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let r = d.call(fid, &[], Some(Type::I64)).unwrap();
            d.ret(Some(r));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::CallDepth,
                ..
            }
        ));
    }

    #[test]
    fn float_pipeline() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::F64), |d| {
            let a = d.fconst(2.0);
            let b = d.fconst(0.25);
            let s = d.fadd(a, b); // 2.25
            let q = d.fsqrt(s); // 1.5
            let n = d.fneg(q); // -1.5
            let ab = d.fabs(n); // 1.5
            let fl = d.ffloor(ab); // 1.0
            d.ret(Some(fl));
        });
        m.add_function(f);
        let bits = run_main(&m).return_bits().unwrap();
        assert_eq!(f64::from_bits(bits), 1.0);
    }

    #[test]
    fn fault_injection_flips_a_live_value() {
        // acc accumulates 1s; a late flip of a high bit in some register
        // usually changes the result or is masked — but it must never
        // panic and the record must be present when triggered.
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(50));
            d.for_range(s, e, |d, _| {
                let a = d.get(acc);
                let one = d.i64c(1);
                let a2 = d.add(a, one);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(&m, VmConfig::default());
        let golden = vm.run(main, &[], &mut NoopObserver, None);
        assert_eq!(golden.return_bits(), Some(50));

        let mut changed = 0;
        let mut injected = 0;
        for seed in 0..20 {
            let mut vm = Vm::new(&m, VmConfig::default());
            let r = vm.run(
                main,
                &[],
                &mut NoopObserver,
                Some(FaultPlan::register(40, seed)),
            );
            if let Some(rec) = r.injection {
                injected += 1;
                assert_ne!(rec.old_bits, rec.new_bits);
            }
            if r.return_bits() != Some(50) {
                changed += 1;
            }
        }
        assert!(injected > 0, "no injection ever triggered");
        assert!(changed > 0, "no injection ever altered the output");
    }

    #[test]
    fn injection_record_reproducible() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(3);
            let b = d.mul(a, a);
            let c = d.add(b, a);
            d.ret(Some(c));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let plan = FaultPlan::register(2, 7);
        let r1 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, Some(plan));
        let r2 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, Some(plan));
        assert_eq!(r1, r2);
    }

    #[test]
    fn observer_sees_results() {
        #[derive(Default)]
        struct Counter {
            execs: u64,
            results: u64,
            enters: u64,
            terms: u64,
        }
        impl Observer for Counter {
            fn on_enter(&mut self, _: FuncId, _: &Function) {
                self.enters += 1;
            }
            fn on_exec(&mut self, _: FuncId, _: &Function, _: InstId) {
                self.execs += 1;
            }
            fn on_result(&mut self, _: FuncId, _: &Function, _: InstId, _: Type, _: u64) {
                self.results += 1;
            }
            fn on_term(&mut self, _: FuncId, _: &Function, _: BlockId) {
                self.terms += 1;
            }
        }
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(1);
            let b = d.add(a, a);
            let c = d.add(b, b);
            d.ret(Some(c));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut obs = Counter::default();
        let r = Vm::new(&m, VmConfig::default()).run(main, &[], &mut obs, None);
        assert_eq!(r.return_bits(), Some(4));
        assert_eq!(obs.enters, 1);
        assert_eq!(obs.execs, 2);
        assert_eq!(obs.results, 2);
        assert_eq!(obs.terms, 1);
        assert_eq!(r.dyn_insts, 3); // 2 adds + ret
    }

    #[test]
    fn guard_region_starts_at_global_base() {
        let m = Module::new("m");
        let vm = Vm::new(&m, VmConfig::default());
        assert!(vm.mem.load(GLOBAL_BASE as i64 - 1, Type::I8).is_err());
        assert!(vm.mem.load(GLOBAL_BASE as i64, Type::I8).is_ok());
    }

    /// A kernel with calls, loops and memory traffic — exercises every
    /// snapshot-relevant state component (frame stack, slots, memory).
    fn snapshot_kernel() -> Module {
        let mut m = Module::new("m");
        let g = m.add_global("data", 128);
        let base = m.global(g).addr as i64;
        let step = FunctionDsl::build("step", &[Type::I64, Type::I64], Some(Type::I64), |d| {
            let a = d.param(0);
            let i = d.param(1);
            let sq = d.mul(i, i);
            let r = d.add(a, sq);
            d.ret(Some(r));
        });
        let step_id = m.add_function(step);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(16));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.call(step_id, &[a, i], Some(Type::I64)).unwrap();
                d.set(acc, a2);
                d.store_elem(b, i, a2);
            });
            let acc2 = d.declare_var(Type::I64);
            d.set(acc2, z);
            d.for_range(s, e, |d, i| {
                let v = d.load_elem(Type::I64, b, i);
                let a = d.get(acc2);
                let a2 = d.add(a, v);
                d.set(acc2, a2);
            });
            let a = d.get(acc2);
            d.ret(Some(a));
        });
        m.add_function(f);
        m
    }

    #[test]
    fn recording_run_matches_plain_run_and_spaces_checkpoints() {
        let m = snapshot_kernel();
        let main = m.function_by_name("main").unwrap();
        let plain = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, None);

        let mut snaps: Vec<Snapshot> = Vec::new();
        let rec = Vm::new(&m, VmConfig::default()).run_recording(
            main,
            &[],
            &mut NoopObserver,
            25,
            |s, _| snaps.push(s),
        );
        assert_eq!(plain, rec, "recording must not perturb execution");
        assert!(!snaps.is_empty());
        assert_eq!(snaps.len() as u64, (rec.dyn_insts - 1) / 25);
        for (k, s) in snaps.iter().enumerate() {
            assert_eq!(s.dyn_count(), (k as u64 + 1) * 25);
            assert!(s.size_bytes() > s.memory().len());
        }
    }

    #[test]
    fn resume_from_any_checkpoint_completes_identically() {
        let m = snapshot_kernel();
        let main = m.function_by_name("main").unwrap();
        let mut snaps: Vec<Snapshot> = Vec::new();
        let direct = Vm::new(&m, VmConfig::default()).run_recording(
            main,
            &[],
            &mut NoopObserver,
            10,
            |s, _| snaps.push(s),
        );
        for s in &snaps {
            let mut vm = Vm::new(&m, VmConfig::default());
            let resumed = vm.resume_from(s, &mut NoopObserver, None);
            assert_eq!(direct, resumed, "resume at {} diverged", s.dyn_count());
        }
    }

    #[test]
    fn resume_with_fault_matches_direct_injection() {
        let m = snapshot_kernel();
        let main = m.function_by_name("main").unwrap();
        let mut snaps: Vec<Snapshot> = Vec::new();
        let golden = Vm::new(&m, VmConfig::default()).run_recording(
            main,
            &[],
            &mut NoopObserver,
            20,
            |s, _| snaps.push(s),
        );
        let n = golden.dyn_insts;
        for seed in 0..10u64 {
            for plan in [
                FaultPlan::register(n * (seed + 1) / 11, seed),
                FaultPlan::branch_target(n * (seed + 1) / 11, seed),
            ] {
                let direct =
                    Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, Some(plan));
                // Greatest checkpoint at or before the trigger, as the
                // campaign scheduler picks it.
                let best = snaps.iter().rfind(|s| s.dyn_count() <= plan.at_dyn);
                let Some(best) = best else { continue };
                let resumed = Vm::new(&m, VmConfig::default()).resume_from(
                    best,
                    &mut NoopObserver,
                    Some(plan),
                );
                assert_eq!(
                    direct, resumed,
                    "divergence at seed {seed} kind {:?}",
                    plan.kind
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "predates snapshot")]
    fn resume_rejects_pre_snapshot_trigger() {
        let m = snapshot_kernel();
        let main = m.function_by_name("main").unwrap();
        let mut snaps: Vec<Snapshot> = Vec::new();
        Vm::new(&m, VmConfig::default())
            .run_recording(main, &[], &mut NoopObserver, 30, |s, _| snaps.push(s));
        let s = snaps.last().unwrap();
        Vm::new(&m, VmConfig::default()).resume_from(
            s,
            &mut NoopObserver,
            Some(FaultPlan::register(s.dyn_count() - 1, 0)),
        );
    }
}
