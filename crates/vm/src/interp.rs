//! The IR interpreter (functional model).

use crate::fault::{flip_bit, FaultInjector, FaultKind, FaultPlan, InjectionRecord};
use crate::memory::Memory;
use crate::outcome::{RunEnd, RunResult, TrapKind};
use softft_ir::function::{Function, ValueKind};
use softft_ir::inst::{BinOp, CastKind, FloatCC, IntCC, Op, Term, UnOp};
use softft_ir::{BlockId, FuncId, InstId, Module, Type, ValueId};

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Scratch bytes appended after the last global.
    pub mem_slack: u64,
    /// Dynamic-instruction watchdog (models hang detection; the paper
    /// classifies infinite loops as `Failure`).
    pub max_dyn_insts: u64,
    /// Maximum call depth.
    pub max_call_depth: u32,
    /// When true, failing [`softft_ir::Op::Check`] instructions are
    /// *counted* instead of trapping — modelling a detection-plus-recovery
    /// system that continues after recovering. Used for the paper's
    /// false-positive measurement (checks firing with no fault present).
    pub checks_count_only: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            mem_slack: 1 << 20,
            max_dyn_insts: 400_000_000,
            max_call_depth: 64,
            checks_count_only: false,
        }
    }
}

/// Hooks invoked during interpretation. All methods have no-op defaults.
///
/// Observers receive *canonical bits* (sign-extended integers, float bit
/// patterns) — the same representation the fault injector mutates.
pub trait Observer {
    /// A frame was pushed for `func`.
    fn on_enter(&mut self, func: FuncId, f: &Function) {
        let _ = (func, f);
    }
    /// The frame for `func` was popped.
    fn on_exit(&mut self, func: FuncId) {
        let _ = func;
    }
    /// `inst` in `func` is about to execute (called for non-phi
    /// instructions only).
    fn on_exec(&mut self, func: FuncId, f: &Function, inst: InstId) {
        let _ = (func, f, inst);
    }
    /// `inst` produced `bits` of type `ty`.
    fn on_result(&mut self, func: FuncId, f: &Function, inst: InstId, ty: Type, bits: u64) {
        let _ = (func, f, inst, ty, bits);
    }
    /// The terminator of `block` in `func` is about to execute.
    fn on_term(&mut self, func: FuncId, f: &Function, block: BlockId) {
        let _ = (func, f, block);
    }
    /// Phi `inst` selected `incoming` on block entry (a register rename;
    /// timing models propagate readiness through it).
    fn on_phi(&mut self, func: FuncId, f: &Function, inst: InstId, incoming: ValueId) {
        let _ = (func, f, inst, incoming);
    }
    /// A [`Op::Check`] at `inst` failed (called in both trapping and
    /// counting modes, before the trap is raised).
    fn on_check_fail(&mut self, func: FuncId, f: &Function, inst: InstId) {
        let _ = (func, f, inst);
    }
    /// A fault was injected (called right after the architectural state
    /// was corrupted; `rec` is the same record the [`RunResult`] will
    /// carry). For register faults this fires at the trigger; for
    /// branch-target faults, at the corrupted branch.
    fn on_inject(&mut self, rec: &InjectionRecord) {
        let _ = rec;
    }
}

/// An observer that does nothing (zero-cost when monomorphized).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

struct Frame {
    func: FuncId,
    /// One slot per SSA value; `Some` once defined. Constants are never
    /// materialized here (they are immediates, not register state).
    slots: Vec<Option<u64>>,
    /// Set once a branch-target fault corrupted this frame's control
    /// flow: SSA liveness no longer holds, so reads of never-written
    /// slots yield stale zeros instead of asserting.
    lenient: bool,
}

struct ExecState {
    dyn_count: u64,
    fault: Option<(FaultPlan, FaultInjector)>,
    injection: Option<InjectionRecord>,
    check_failures: u64,
    /// Set when a branch-target fault is due: the next executed branch
    /// jumps to a random block of its function.
    branch_fault_armed: Option<(FaultPlan, FaultInjector)>,
    /// Set once control flow was corrupted: reads of never-written SSA
    /// slots then yield stale zeros instead of asserting (a wrongly
    /// reached block sees whatever garbage the registers hold).
    control_corrupted: bool,
}

impl ExecState {
    /// If the fault trigger is reached, flip a bit in a random defined
    /// slot of `frame`.
    fn maybe_inject<O: Observer>(&mut self, frame: &mut Frame, func: &Function, obs: &mut O) {
        let due = matches!(&self.fault, Some((plan, _)) if plan.at_dyn == self.dyn_count);
        if !due {
            return;
        }
        let (plan, mut inj) = self.fault.take().expect("fault present");
        if plan.kind == FaultKind::BranchTarget {
            // Corrupt the next branch executed rather than a register.
            self.branch_fault_armed = Some((plan, inj));
            return;
        }
        let candidates: Vec<usize> = frame
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if let Some(victim) = inj.choose(&candidates) {
            let vid = ValueId::new(victim);
            let ty = func.value_type(vid);
            let bit = inj.choose_bit(ty);
            let old = frame.slots[victim].expect("candidate is defined");
            let new = flip_bit(old, ty, bit);
            frame.slots[victim] = Some(new);
            let rec = InjectionRecord::register(
                plan.at_dyn,
                frame.func,
                vid,
                ty,
                bit,
                old,
                new,
                func.def_inst(vid),
            );
            obs.on_inject(&rec);
            self.injection = Some(rec);
        }
        // If no slot was defined yet the fault hit dead state: masked.
    }
}

/// The interpreter.
///
/// A `Vm` owns the linear [`Memory`] for one module; [`Vm::run`] executes
/// an entry function to completion or trap. Memory persists across runs so
/// harnesses can write inputs before and read outputs after; use
/// [`Vm::reset_memory`] between independent runs.
pub struct Vm<'m> {
    module: &'m Module,
    /// Linear memory (public: harnesses preload inputs / read outputs).
    pub mem: Memory,
    config: VmConfig,
}

impl<'m> Vm<'m> {
    /// Creates a VM with fresh memory for `module`.
    pub fn new(module: &'m Module, config: VmConfig) -> Self {
        Vm {
            mem: Memory::for_module(module, config.mem_slack),
            module,
            config,
        }
    }

    /// The module being executed.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Reinitializes memory from the module's global initializers.
    pub fn reset_memory(&mut self) {
        self.mem = Memory::for_module(self.module, self.config.mem_slack);
    }

    /// Runs `entry` with integer/float `args` given as canonical bits.
    ///
    /// `fault`, when supplied, injects a single bit flip per
    /// [`FaultPlan`]. The run never panics on guest misbehaviour — all
    /// guest errors surface as traps in the result.
    pub fn run<O: Observer>(
        &mut self,
        entry: FuncId,
        args: &[u64],
        obs: &mut O,
        fault: Option<FaultPlan>,
    ) -> RunResult {
        let mut state = ExecState {
            dyn_count: 0,
            fault: fault.map(|p| (p, FaultInjector::new(&p))),
            injection: None,
            check_failures: 0,
            branch_fault_armed: None,
            control_corrupted: false,
        };
        let end = match self.exec_function(entry, args, obs, &mut state, 0) {
            Ok(ret) => RunEnd::Completed { ret },
            Err(kind) => RunEnd::Trap {
                kind,
                at_dyn: state.dyn_count,
            },
        };
        RunResult {
            end,
            dyn_insts: state.dyn_count,
            injection: state.injection,
            check_failures: state.check_failures,
        }
    }

    fn exec_function<O: Observer>(
        &mut self,
        fid: FuncId,
        args: &[u64],
        obs: &mut O,
        state: &mut ExecState,
        depth: u32,
    ) -> Result<Option<u64>, TrapKind> {
        if depth >= self.config.max_call_depth {
            return Err(TrapKind::CallDepth);
        }
        let func = self.module.function(fid);
        assert_eq!(
            args.len(),
            func.params.len(),
            "arity mismatch calling {}",
            func.name
        );
        let mut frame = Frame {
            func: fid,
            slots: vec![None; func.num_values()],
            lenient: false,
        };
        for (i, &a) in args.iter().enumerate() {
            let p = func.param(i);
            let ty = func.value_type(p);
            let canon = if ty.is_float() {
                a
            } else {
                ty.sign_extend(a) as u64
            };
            frame.slots[p.index()] = Some(canon);
        }
        obs.on_enter(fid, func);

        let mut block = func.entry();
        let mut prev_block: Option<BlockId> = None;

        'blocks: loop {
            // Phis: parallel-copy semantics (read all, then write all).
            if let Some(prev) = prev_block {
                let mut writes: Vec<(usize, u64)> = Vec::new();
                for &i in &func.block(block).insts {
                    let inst = func.inst(i);
                    let Op::Phi { incomings } = &inst.op else {
                        break;
                    };
                    let incoming = incomings.iter().find(|(p, _)| *p == prev);
                    let Some((_, v)) = incoming else {
                        // Only reachable after a branch-target fault: the
                        // edge does not exist in the CFG, so the phi's
                        // "register" keeps its stale value.
                        assert!(
                            frame.lenient,
                            "phi {i} in {block} of {} lacks incoming for {prev}",
                            func.name
                        );
                        continue;
                    };
                    let bits = self.value_bits(func, &frame, *v);
                    let r = inst.result.expect("phi has result");
                    obs.on_phi(fid, func, i, *v);
                    writes.push((r.index(), bits));
                }
                for (slot, bits) in writes {
                    frame.slots[slot] = Some(bits);
                }
            }

            // Non-phi instructions.
            let insts = &func.block(block).insts;
            let first_non_phi = insts
                .iter()
                .position(|&i| !func.inst(i).op.is_phi())
                .unwrap_or(insts.len());
            for &i in &insts[first_non_phi..] {
                let inst = func.inst(i);
                debug_assert!(!inst.dead, "dead instruction linked");
                state.maybe_inject(&mut frame, func, obs);
                if state.dyn_count >= self.config.max_dyn_insts {
                    return Err(TrapKind::Watchdog);
                }
                state.dyn_count += 1;
                obs.on_exec(fid, func, i);

                match &inst.op {
                    Op::Call { func: callee, args } => {
                        let argv: Vec<u64> = args
                            .iter()
                            .map(|&a| self.value_bits(func, &frame, a))
                            .collect();
                        let ret = self.exec_function(*callee, &argv, obs, state, depth + 1)?;
                        if let Some(r) = inst.result {
                            let bits = ret.expect("verified call returns a value");
                            frame.slots[r.index()] = Some(bits);
                            obs.on_result(fid, func, i, func.value_type(r), bits);
                        }
                    }
                    Op::Store { addr, value } => {
                        let a = self.value_bits(func, &frame, *addr) as i64;
                        let v = self.value_bits(func, &frame, *value);
                        let ty = func.value_type(*value);
                        self.mem.store(a, ty, v)?;
                    }
                    Op::Check { cond, kind } => {
                        let c = self.value_bits(func, &frame, *cond);
                        if c & 1 == 0 {
                            obs.on_check_fail(fid, func, i);
                            if self.config.checks_count_only {
                                state.check_failures += 1;
                            } else {
                                return Err(TrapKind::SwDetect(*kind));
                            }
                        }
                    }
                    op => {
                        let r = inst.result.expect("pure op has a result");
                        let ty = func.value_type(r);
                        let bits = self.eval_pure(func, &frame, op, ty)?;
                        frame.slots[r.index()] = Some(bits);
                        obs.on_result(fid, func, i, ty, bits);
                    }
                }
            }

            // Terminator.
            state.maybe_inject(&mut frame, func, obs);
            if state.dyn_count >= self.config.max_dyn_insts {
                return Err(TrapKind::Watchdog);
            }
            state.dyn_count += 1;
            obs.on_term(fid, func, block);
            let term = func
                .block(block)
                .term
                .as_ref()
                .expect("verified function has terminators");
            match term {
                Term::Br(t) => {
                    prev_block = Some(block);
                    block = *t;
                }
                Term::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.value_bits(func, &frame, *cond);
                    prev_block = Some(block);
                    block = if c & 1 == 1 { *then_bb } else { *else_bb };
                }
                Term::Ret(v) => {
                    let ret = v.map(|v| self.value_bits(func, &frame, v));
                    obs.on_exit(fid);
                    return Ok(ret);
                }
            }
            // A pending branch-target fault corrupts this transfer: the
            // branch lands on a random block of the function instead.
            if let Some((plan, mut inj)) = state.branch_fault_armed.take() {
                let victim = inj.choose_block(func.num_blocks());
                let intended = block;
                block = BlockId::new(victim);
                frame.lenient = true;
                state.control_corrupted = true;
                let rec = InjectionRecord::branch(plan.at_dyn, fid, intended, BlockId::new(victim));
                obs.on_inject(&rec);
                state.injection = Some(rec);
            }
            continue 'blocks;
        }
    }

    #[inline]
    fn value_bits(&self, func: &Function, frame: &Frame, v: ValueId) -> u64 {
        match func.value(v).kind {
            ValueKind::Const(c) => c.bits(),
            _ => match frame.slots[v.index()] {
                Some(bits) => bits,
                // Reads of never-written slots are only legal after a
                // branch-target fault tore up SSA liveness; the register
                // then holds unspecified (modelled as zero) garbage.
                None => {
                    assert!(frame.lenient, "SSA: use before def");
                    0
                }
            },
        }
    }

    fn eval_pure(
        &self,
        func: &Function,
        frame: &Frame,
        op: &Op,
        result_ty: Type,
    ) -> Result<u64, TrapKind> {
        let val = |v: ValueId| self.value_bits(func, frame, v);
        let ity = |v: ValueId| func.value_type(v);
        Ok(match op {
            Op::Bin { op, lhs, rhs } => {
                let ty = ity(*lhs);
                if op.is_float() {
                    let a = f64::from_bits(val(*lhs));
                    let b = f64::from_bits(val(*rhs));
                    let r = match op {
                        BinOp::FAdd => a + b,
                        BinOp::FSub => a - b,
                        BinOp::FMul => a * b,
                        BinOp::FDiv => a / b,
                        _ => unreachable!("float op"),
                    };
                    r.to_bits()
                } else {
                    let a = val(*lhs) as i64;
                    let b = val(*rhs) as i64;
                    let mask = if ty.bits() == 64 {
                        u64::MAX
                    } else {
                        (1u64 << ty.bits()) - 1
                    };
                    let ua = (a as u64) & mask;
                    let ub = (b as u64) & mask;
                    let r: i64 = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::SDiv => {
                            if b == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            a.wrapping_div(b)
                        }
                        BinOp::SRem => {
                            if b == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            a.wrapping_rem(b)
                        }
                        BinOp::UDiv => {
                            if ub == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            (ua / ub) as i64
                        }
                        BinOp::URem => {
                            if ub == 0 {
                                return Err(TrapKind::DivByZero);
                            }
                            (ua % ub) as i64
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => {
                            let amt = (b as u64) % ty.bits() as u64;
                            a.wrapping_shl(amt as u32)
                        }
                        BinOp::LShr => {
                            let amt = (b as u64) % ty.bits() as u64;
                            (ua >> amt) as i64
                        }
                        BinOp::AShr => {
                            let amt = (b as u64) % ty.bits() as u64;
                            a.wrapping_shr(amt as u32)
                        }
                        _ => unreachable!("int op"),
                    };
                    ty.canon(r) as u64
                }
            }
            Op::Un { op, arg } => {
                let a = f64::from_bits(val(*arg));
                let r = match op {
                    UnOp::FSqrt => a.sqrt(),
                    UnOp::FAbs => a.abs(),
                    UnOp::FFloor => a.floor(),
                    UnOp::FNeg => -a,
                };
                r.to_bits()
            }
            Op::Icmp { pred, lhs, rhs } => {
                let ty = ity(*lhs);
                let a = val(*lhs) as i64;
                let b = val(*rhs) as i64;
                let mask = if ty.bits() == 64 {
                    u64::MAX
                } else {
                    (1u64 << ty.bits()) - 1
                };
                let (ua, ub) = ((a as u64) & mask, (b as u64) & mask);
                let r = match pred {
                    IntCC::Eq => a == b,
                    IntCC::Ne => a != b,
                    IntCC::Slt => a < b,
                    IntCC::Sle => a <= b,
                    IntCC::Sgt => a > b,
                    IntCC::Sge => a >= b,
                    IntCC::Ult => ua < ub,
                    IntCC::Ule => ua <= ub,
                    IntCC::Ugt => ua > ub,
                    IntCC::Uge => ua >= ub,
                };
                r as u64
            }
            Op::Fcmp { pred, lhs, rhs } => {
                let a = f64::from_bits(val(*lhs));
                let b = f64::from_bits(val(*rhs));
                let r = match pred {
                    FloatCC::Eq => a == b,
                    FloatCC::Ne => a != b,
                    FloatCC::Lt => a < b,
                    FloatCC::Le => a <= b,
                    FloatCC::Gt => a > b,
                    FloatCC::Ge => a >= b,
                };
                r as u64
            }
            Op::Cast { kind, arg } => {
                let src_ty = ity(*arg);
                let a = val(*arg);
                match kind {
                    CastKind::Trunc => result_ty.sign_extend(a) as u64,
                    CastKind::SExt => a, // canonical form is already extended
                    CastKind::ZExt => {
                        let mask = if src_ty.bits() == 64 {
                            u64::MAX
                        } else {
                            (1u64 << src_ty.bits()) - 1
                        };
                        a & mask
                    }
                    CastKind::FpToSi => {
                        let f = f64::from_bits(a);
                        let v = f as i64; // saturating in Rust
                        result_ty.canon(v) as u64
                    }
                    CastKind::SiToFp => ((a as i64) as f64).to_bits(),
                }
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                if val(*cond) & 1 == 1 {
                    val(*on_true)
                } else {
                    val(*on_false)
                }
            }
            Op::Load { addr } => {
                let a = val(*addr) as i64;
                self.mem.load(a, result_ty)?
            }
            Op::Store { .. } | Op::Call { .. } | Op::Phi { .. } | Op::Check { .. } => {
                unreachable!("handled by the main loop")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softft_ir::dsl::FunctionDsl;
    use softft_ir::module::GLOBAL_BASE;
    use softft_ir::CheckKind;

    fn run_main(m: &Module) -> RunResult {
        let main = m.function_by_name("main").expect("main exists");
        let mut vm = Vm::new(m, VmConfig::default());
        vm.run(main, &[], &mut NoopObserver, None)
    }

    #[test]
    fn arithmetic_kernel_returns_sum() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(1), d.i64c(101));
            d.for_range(s, e, |d, i| {
                let a = d.get(acc);
                let a2 = d.add(a, i);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits(), Some(5050));
    }

    #[test]
    fn narrow_types_wrap() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.iconst(Type::I8, 120);
            let b = d.iconst(Type::I8, 100);
            let s = d.add(a, b); // 220 wraps to -36 in i8
            let w = d.sext(s, Type::I64);
            d.ret(Some(w));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits().map(|b| b as i64), Some(-36));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(10);
            let b = d.i64c(0);
            let q = d.sdiv(a, b);
            d.ret(Some(q));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::DivByZero,
                ..
            }
        ));
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Module::new("m");
        m.add_global("buf", 16);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(8); // below GLOBAL_BASE: guard page
            let v = d.load(Type::I64, a);
            d.ret(Some(v));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::OutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let one = d.iconst(Type::I1, 1);
            d.while_(|_| one, |_| {});
            let z = d.i64c(0);
            d.ret(Some(z));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(
            &m,
            VmConfig {
                max_dyn_insts: 10_000,
                ..VmConfig::default()
            },
        );
        let r = vm.run(main, &[], &mut NoopObserver, None);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::Watchdog,
                ..
            }
        ));
    }

    #[test]
    fn check_instruction_traps_when_false() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(5);
            let b = d.i64c(6);
            let eq = d.icmp(IntCC::Eq, a, b);
            d.check(eq, CheckKind::ValueSingle);
            d.ret(Some(a));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::SwDetect(CheckKind::ValueSingle),
                ..
            }
        ));
    }

    #[test]
    fn memory_roundtrip_through_globals() {
        let mut m = Module::new("m");
        let g = m.add_global("data", 64);
        let base = m.global(g).addr as i64;
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let b = d.i64c(base);
            let (s, e) = (d.i64c(0), d.i64c(8));
            d.for_range(s, e, |d, i| {
                let v = d.mul(i, i);
                d.store_elem(b, i, v);
            });
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            d.for_range(s, e, |d, i| {
                let v = d.load_elem(Type::I64, b, i);
                let a = d.get(acc);
                let a2 = d.add(a, v);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        // Σ i² for 0..8 = 140
        assert_eq!(run_main(&m).return_bits(), Some(140));
    }

    #[test]
    fn calls_pass_arguments_and_return() {
        let mut m = Module::new("m");
        let sq = FunctionDsl::build("square", &[Type::I64], Some(Type::I64), |d| {
            let p = d.param(0);
            let r = d.mul(p, p);
            d.ret(Some(r));
        });
        let sq_id = m.add_function(sq);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let x = d.i64c(9);
            let r = d.call(sq_id, &[x], Some(Type::I64)).unwrap();
            d.ret(Some(r));
        });
        m.add_function(f);
        assert_eq!(run_main(&m).return_bits(), Some(81));
    }

    #[test]
    fn recursion_depth_traps() {
        let mut m = Module::new("m");
        // Build a self-recursive function by pre-reserving its id (0).
        let fid = FuncId::new(0);
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let r = d.call(fid, &[], Some(Type::I64)).unwrap();
            d.ret(Some(r));
        });
        m.add_function(f);
        let r = run_main(&m);
        assert!(matches!(
            r.end,
            RunEnd::Trap {
                kind: TrapKind::CallDepth,
                ..
            }
        ));
    }

    #[test]
    fn float_pipeline() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::F64), |d| {
            let a = d.fconst(2.0);
            let b = d.fconst(0.25);
            let s = d.fadd(a, b); // 2.25
            let q = d.fsqrt(s); // 1.5
            let n = d.fneg(q); // -1.5
            let ab = d.fabs(n); // 1.5
            let fl = d.ffloor(ab); // 1.0
            d.ret(Some(fl));
        });
        m.add_function(f);
        let bits = run_main(&m).return_bits().unwrap();
        assert_eq!(f64::from_bits(bits), 1.0);
    }

    #[test]
    fn fault_injection_flips_a_live_value() {
        // acc accumulates 1s; a late flip of a high bit in some register
        // usually changes the result or is masked — but it must never
        // panic and the record must be present when triggered.
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let acc = d.declare_var(Type::I64);
            let z = d.i64c(0);
            d.set(acc, z);
            let (s, e) = (d.i64c(0), d.i64c(50));
            d.for_range(s, e, |d, _| {
                let a = d.get(acc);
                let one = d.i64c(1);
                let a2 = d.add(a, one);
                d.set(acc, a2);
            });
            let a = d.get(acc);
            d.ret(Some(a));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut vm = Vm::new(&m, VmConfig::default());
        let golden = vm.run(main, &[], &mut NoopObserver, None);
        assert_eq!(golden.return_bits(), Some(50));

        let mut changed = 0;
        let mut injected = 0;
        for seed in 0..20 {
            let mut vm = Vm::new(&m, VmConfig::default());
            let r = vm.run(
                main,
                &[],
                &mut NoopObserver,
                Some(FaultPlan::register(40, seed)),
            );
            if let Some(rec) = r.injection {
                injected += 1;
                assert_ne!(rec.old_bits, rec.new_bits);
            }
            if r.return_bits() != Some(50) {
                changed += 1;
            }
        }
        assert!(injected > 0, "no injection ever triggered");
        assert!(changed > 0, "no injection ever altered the output");
    }

    #[test]
    fn injection_record_reproducible() {
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(3);
            let b = d.mul(a, a);
            let c = d.add(b, a);
            d.ret(Some(c));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let plan = FaultPlan::register(2, 7);
        let r1 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, Some(plan));
        let r2 = Vm::new(&m, VmConfig::default()).run(main, &[], &mut NoopObserver, Some(plan));
        assert_eq!(r1, r2);
    }

    #[test]
    fn observer_sees_results() {
        #[derive(Default)]
        struct Counter {
            execs: u64,
            results: u64,
            enters: u64,
            terms: u64,
        }
        impl Observer for Counter {
            fn on_enter(&mut self, _: FuncId, _: &Function) {
                self.enters += 1;
            }
            fn on_exec(&mut self, _: FuncId, _: &Function, _: InstId) {
                self.execs += 1;
            }
            fn on_result(&mut self, _: FuncId, _: &Function, _: InstId, _: Type, _: u64) {
                self.results += 1;
            }
            fn on_term(&mut self, _: FuncId, _: &Function, _: BlockId) {
                self.terms += 1;
            }
        }
        let mut m = Module::new("m");
        let f = FunctionDsl::build("main", &[], Some(Type::I64), |d| {
            let a = d.i64c(1);
            let b = d.add(a, a);
            let c = d.add(b, b);
            d.ret(Some(c));
        });
        m.add_function(f);
        let main = m.function_by_name("main").unwrap();
        let mut obs = Counter::default();
        let r = Vm::new(&m, VmConfig::default()).run(main, &[], &mut obs, None);
        assert_eq!(r.return_bits(), Some(4));
        assert_eq!(obs.enters, 1);
        assert_eq!(obs.execs, 2);
        assert_eq!(obs.results, 2);
        assert_eq!(obs.terms, 1);
        assert_eq!(r.dyn_insts, 3); // 2 adds + ret
    }

    #[test]
    fn guard_region_starts_at_global_base() {
        let m = Module::new("m");
        let vm = Vm::new(&m, VmConfig::default());
        assert!(vm.mem.load(GLOBAL_BASE as i64 - 1, Type::I8).is_err());
        assert!(vm.mem.load(GLOBAL_BASE as i64, Type::I8).is_ok());
    }
}
